#ifndef SMARTSSD_ENGINE_QUERY_TASK_H_
#define SMARTSSD_ENGINE_QUERY_TASK_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "exec/morsel.h"
#include "exec/page_processor.h"
#include "exec/predicate_range.h"
#include "exec/pushdown_program.h"
#include "exec/query_spec.h"
#include "smart/session_task.h"

namespace smartssd::engine {

// Resumable query execution. The blocking QueryExecutor entry points are
// thin loops over the task classes below, which advance a query one page
// (host path) or one session protocol unit (pushdown path) per Step().
// That granularity is what lets a workload scheduler interleave many
// in-flight queries on the shared simulated resources; driven solo in a
// tight loop, each task issues the identical resource-call sequence the
// old monolithic executor bodies did, so single-query timelines are
// byte-identical by construction.

// What one Step() of a task reports back to its driver.
struct StepOutcome {
  // Virtual time the step's work retired at — when the task next has
  // work ready. A scheduler clamps this to its own now (some steps
  // complete in the past: cached pages, pruned pages).
  SimTime at = 0;
  bool finished = false;
  // The task wants to OPEN a device session but no firmware thread
  // grant is free; nothing was issued. Re-Step() once a grant frees.
  bool waiting_for_grant = false;
};

// The conventional path (QueryExecutor::ExecuteOnHost) as a state
// machine: join build one inner page per step, then scan one outer page
// per step, then finalize. `bound` must outlive the task.
class HostQueryTask {
 public:
  HostQueryTask(Database* db, const exec::BoundQuery* bound, SimTime start);
  ~HostQueryTask();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(HostQueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }

  // Valid once finished(); moves the result out.
  Result<QueryResult> TakeResult();

 private:
  enum class State {
    kStart,
    kBuildRead,
    kBuildFinish,
    kPrepareScan,
    kScan,
    kFinish,
    kDone,
  };

  StepOutcome StepStart();
  StepOutcome StepBuildRead();
  StepOutcome StepBuildFinish();
  StepOutcome StepPrepareScan();
  StepOutcome StepScan();
  // Morsel-parallel variant: dispatches the whole scan to worker
  // threads in one step, then replays virtual time from the per-page
  // counts in page order (wall-clock-only parallelism; see
  // exec/morsel.h). Taken when host_threads > 1 and the query is
  // morsel-eligible.
  StepOutcome StepScanMorsel();
  StepOutcome StepFinish();
  StepOutcome FailWith(const Status& error);
  void CloseSpanForError();

  Database* db_;
  const exec::BoundQuery* bound_;
  SimTime start_;
  obs::Tracer* tracer_ = nullptr;

  State state_ = State::kStart;
  QueryResult result_;
  std::optional<Result<QueryResult>> final_result_;
  StageBreakdown stage_before_;
  obs::SpanId span_id_ = obs::kNoSpan;
  bool span_ended_ = false;

  // Join build state.
  std::optional<exec::JoinHashTableBuilder> builder_;
  SimTime io_done_ = 0;
  std::uint64_t build_page_ = 0;
  std::optional<exec::JoinHashTable> hash_table_;

  // Scan state. Exactly one of processor_ / morsel_ is engaged:
  // morsel_ when host_threads > 1 and the query is morsel-eligible
  // (StepFinish then drives the merged processor), processor_
  // otherwise.
  std::optional<exec::PageProcessor> processor_;
  std::optional<exec::MorselScanner> morsel_;
  exec::CpuCostParams host_params_{};
  std::uint64_t hash_entries_ = 0;
  const storage::ZoneMap* zone_map_ = nullptr;
  // The zone map the processor's batch-skip analysis was last armed
  // with; re-armed whenever a step observes the map changing (e.g. a
  // co-scheduled writer marking it stale destroys the old object).
  const storage::ZoneMap* armed_zone_map_ = nullptr;
  std::map<int, exec::ColumnRange> prune_ranges_;
  SimTime end_ = 0;
  SimTime scan_started_ = 0;
  std::uint64_t page_ = 0;
  std::uint64_t pages_scanned_ = 0;
};

// The pushdown path as a state machine: one session protocol unit per
// step. With `fallback` set it reproduces ExecuteDeviceWithFallback —
// a retryable device failure records on the circuit breaker and re-runs
// the query on the host path from the failure time. With
// `wait_for_grant` set the task parks (waiting_for_grant outcome, no
// device traffic) instead of issuing an OPEN while the device's session
// thread pool is empty; the blocking executor passes false and eats the
// rejection, matching the old behavior.
class DeviceQueryTask {
 public:
  DeviceQueryTask(Database* db, const exec::BoundQuery* bound,
                  SimTime start, bool fallback, bool wait_for_grant);
  ~DeviceQueryTask();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(DeviceQueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }

  // Virtual time the device session was torn down at; equals the start
  // time unless a session actually failed.
  SimTime failed_at() const { return failed_at_; }
  bool fell_back() const { return fell_back_; }

  Result<QueryResult> TakeResult();

 private:
  enum class State { kStart, kSession, kHostRerun, kDone };

  StepOutcome StepStart();
  StepOutcome StepSession();
  StepOutcome StepHostRerun();
  StepOutcome HandleDeviceError(const Status& error);
  StepOutcome FinishWithError(const Status& error);
  void CloseSpanForError();

  Database* db_;
  const exec::BoundQuery* bound_;
  SimTime start_;
  bool fallback_;
  bool wait_for_grant_;
  obs::Tracer* tracer_ = nullptr;

  State state_ = State::kStart;
  QueryResult result_;
  std::optional<Result<QueryResult>> final_result_;
  StageBreakdown stage_before_;       // device attempt (ExecuteOnDevice)
  StageBreakdown outer_stage_before_;  // whole query incl. fallback
  obs::SpanId span_id_ = obs::kNoSpan;
  bool span_ended_ = false;

  // Device-resident copy of the table's zone map, taken when the
  // session opens. The host-side map object can be destroyed mid-flight
  // by a co-scheduled writer marking it stale; the device prunes with
  // the snapshot it was shipped, which stays consistent with the pages
  // the session reads (writers only reach flash after a flush, and the
  // dirty-page gate refused the session if a flush was pending).
  std::optional<storage::ZoneMap> device_zone_map_;
  std::optional<exec::PushdownProgram> program_;
  std::unique_ptr<smart::SessionTask> session_;
  bool session_started_ = false;
  SimTime failed_at_ = 0;
  bool fell_back_ = false;
  // Set when the task abandoned its park for a session grant because the
  // breaker opened: the query fell back without ever reaching the
  // device, so the stats must not count a device attempt.
  bool redispatched_without_attempt_ = false;
  Status device_error_ = Status::OK();
  std::optional<HostQueryTask> host_rerun_;
};

// A whole submitted query: binds the spec, picks the target (explicit,
// or the pushdown planner when constructed with hints), and delegates to
// the host or device task. This is the unit the workload scheduler
// drives. `spec` must outlive the task (keep specs at stable addresses).
class QueryTask {
 public:
  // Explicit target, as QueryExecutor::Execute.
  QueryTask(Database* db, const exec::QuerySpec* spec,
            ExecutionTarget target, SimTime start, bool wait_for_grant);
  // Planner-chosen target, as QueryExecutor::ExecuteAuto.
  QueryTask(Database* db, const exec::QuerySpec* spec,
            const PlanHints& hints, SimTime start, bool wait_for_grant);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(QueryTask);

  StepOutcome Step();
  bool finished() const { return state_ == State::kDone; }
  SimTime start() const { return start_; }
  const exec::QuerySpec& spec() const { return *spec_; }

  Result<QueryResult> TakeResult();

 private:
  enum class State { kPlan, kRun, kDone };

  Database* db_;
  const exec::QuerySpec* spec_;
  SimTime start_;
  bool wait_for_grant_;
  std::optional<ExecutionTarget> explicit_target_;
  PlanHints hints_;

  State state_ = State::kPlan;
  std::optional<exec::BoundQuery> bound_;
  std::optional<HostQueryTask> host_task_;
  std::optional<DeviceQueryTask> device_task_;
  std::optional<Result<QueryResult>> final_result_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_QUERY_TASK_H_
