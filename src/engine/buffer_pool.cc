#include "engine/buffer_pool.h"

#include <algorithm>

namespace smartssd::engine {

BufferPool::BufferPool(ssd::BlockDevice* device,
                       std::uint64_t capacity_pages)
    : device_(device) {
  SMARTSSD_CHECK(device != nullptr);
  SMARTSSD_CHECK_GE(capacity_pages, kReadAheadPages);
  frames_.resize(static_cast<std::size_t>(capacity_pages));
  for (Frame& frame : frames_) {
    frame.data.resize(device->page_size());
  }
  io_buffer_.resize(static_cast<std::size_t>(kReadAheadPages) *
                    device->page_size());
}

bool BufferPool::IsCached(std::uint64_t lpn) const {
  return map_.find(lpn) != map_.end();
}

bool BufferPool::IsDirty(std::uint64_t lpn) const {
  auto it = map_.find(lpn);
  return it != map_.end() && frames_[it->second].dirty;
}

bool BufferPool::HasDirtyInRange(std::uint64_t first_lpn,
                                 std::uint64_t count) const {
  // The pool is small relative to table extents, so walk the frames.
  for (const Frame& frame : frames_) {
    if (frame.valid && frame.dirty && frame.lpn >= first_lpn &&
        frame.lpn < first_lpn + count) {
      return true;
    }
  }
  return false;
}

std::uint64_t BufferPool::CachedInRange(std::uint64_t first_lpn,
                                        std::uint64_t count) const {
  std::uint64_t cached = 0;
  for (const Frame& frame : frames_) {
    if (frame.valid && frame.lpn >= first_lpn &&
        frame.lpn < first_lpn + count) {
      ++cached;
    }
  }
  return cached;
}

Result<std::size_t> BufferPool::Evict(SimTime ready, SimTime* io_done) {
  for (std::size_t sweep = 0; sweep < 2 * frames_.size() + 1; ++sweep) {
    Frame& frame = frames_[clock_hand_];
    const std::size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (!frame.valid) return index;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      SMARTSSD_ASSIGN_OR_RETURN(
          *io_done, device_->WritePages(frame.lpn, 1, frame.data,
                                        std::max(ready, *io_done)));
      frame.dirty = false;
    }
    map_.erase(frame.lpn);
    frame.valid = false;
    obs::BumpCounter(m_evictions_);
    return index;
  }
  return InternalError("buffer pool eviction failed to find a victim");
}

Result<SimTime> BufferPool::InstallRange(std::uint64_t lpn,
                                         std::uint32_t count,
                                         SimTime ready) {
  const std::uint32_t page_size = device_->page_size();
  SimTime io_done = ready;
  SMARTSSD_ASSIGN_OR_RETURN(
      io_done,
      device_->ReadPages(
          lpn, count,
          std::span<std::byte>(io_buffer_.data(),
                               static_cast<std::size_t>(count) * page_size),
          ready));
  for (std::uint32_t i = 0; i < count; ++i) {
    if (map_.find(lpn + i) != map_.end()) continue;  // already resident
    SimTime flush_done = io_done;
    SMARTSSD_ASSIGN_OR_RETURN(const std::size_t frame_index,
                              Evict(ready, &flush_done));
    io_done = std::max(io_done, flush_done);
    Frame& frame = frames_[frame_index];
    frame.lpn = lpn + i;
    frame.valid = true;
    frame.dirty = false;
    frame.referenced = true;
    frame.available_at = io_done;
    std::copy_n(io_buffer_.begin() +
                    static_cast<std::size_t>(i) * page_size,
                page_size, frame.data.begin());
    map_[lpn + i] = frame_index;
  }
  return io_done;
}

Result<std::pair<std::span<const std::byte>, SimTime>> BufferPool::GetPage(
    std::uint64_t lpn, SimTime ready, std::uint64_t limit_lpn) {
  auto it = map_.find(lpn);
  if (it != map_.end()) {
    ++hits_;
    obs::BumpCounter(m_hits_);
    Frame& frame = frames_[it->second];
    frame.referenced = true;
    return std::make_pair(std::span<const std::byte>(frame.data),
                          std::max(ready, frame.available_at));
  }
  ++misses_;
  obs::BumpCounter(m_misses_);
  if (limit_lpn <= lpn) limit_lpn = lpn + 1;
  const std::uint32_t count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(kReadAheadPages, limit_lpn - lpn));
  SMARTSSD_ASSIGN_OR_RETURN(const SimTime io_done,
                            InstallRange(lpn, count, ready));
  it = map_.find(lpn);
  SMARTSSD_CHECK(it != map_.end());
  Frame& frame = frames_[it->second];
  return std::make_pair(std::span<const std::byte>(frame.data), io_done);
}

Result<SimTime> BufferPool::WritePage(std::uint64_t lpn,
                                      std::span<const std::byte> data,
                                      SimTime ready) {
  if (data.size() != device_->page_size()) {
    return InvalidArgumentError("buffer pool write: wrong page size");
  }
  SimTime t = ready;
  if (!IsCached(lpn)) {
    SMARTSSD_ASSIGN_OR_RETURN(t, InstallRange(lpn, 1, ready));
  }
  Frame& frame = frames_[map_.at(lpn)];
  std::copy(data.begin(), data.end(), frame.data.begin());
  frame.dirty = true;
  frame.referenced = true;
  frame.available_at = t;
  return t;
}

Result<SimTime> BufferPool::FlushPage(std::uint64_t lpn, SimTime ready) {
  auto it = map_.find(lpn);
  if (it == map_.end()) return ready;
  Frame& frame = frames_[it->second];
  if (!frame.dirty) return ready;
  SMARTSSD_ASSIGN_OR_RETURN(
      const SimTime t,
      device_->WritePages(frame.lpn, 1, frame.data,
                          std::max(ready, frame.available_at)));
  frame.dirty = false;
  return t;
}

std::optional<std::uint64_t> BufferPool::NextDirtyInRange(
    std::uint64_t first_lpn, std::uint64_t count) const {
  std::optional<std::uint64_t> best;
  for (const Frame& frame : frames_) {
    if (frame.valid && frame.dirty && frame.lpn >= first_lpn &&
        frame.lpn < first_lpn + count &&
        (!best.has_value() || frame.lpn < *best)) {
      best = frame.lpn;
    }
  }
  return best;
}

Result<SimTime> BufferPool::FlushAll(SimTime ready) {
  SimTime t = ready;
  for (Frame& frame : frames_) {
    if (frame.valid && frame.dirty) {
      SMARTSSD_ASSIGN_OR_RETURN(
          t, device_->WritePages(frame.lpn, 1, frame.data, t));
      frame.dirty = false;
    }
  }
  return t;
}

void BufferPool::Clear() {
  for (Frame& frame : frames_) {
    SMARTSSD_CHECK(!frame.dirty);  // flush before clearing
    frame.valid = false;
    frame.referenced = false;
  }
  map_.clear();
  clock_hand_ = 0;
}

void BufferPool::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_hits_ = nullptr;
    m_misses_ = nullptr;
    m_evictions_ = nullptr;
    return;
  }
  m_hits_ = metrics->counter("bufferpool.hits");
  m_misses_ = metrics->counter("bufferpool.misses");
  m_evictions_ = metrics->counter("bufferpool.evictions");
}

}  // namespace smartssd::engine
