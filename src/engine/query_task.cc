#include "engine/query_task.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "engine/fallback_reason.h"
#include "engine/partial_merge.h"

namespace smartssd::engine {

namespace {

// Decodes the scalar aggregate row (n int64s) from the result bytes.
// Grouped aggregation results stay in `rows` (one row per group, per
// OutputSchema) and are not flattened into agg_values.
Status DecodeAggValues(const exec::BoundQuery& bound,
                       const std::vector<std::byte>& rows,
                       std::vector<std::int64_t>* out) {
  const std::size_t n = bound.spec->aggregates.size();
  if (n == 0 || !bound.spec->group_by.empty()) return Status::OK();
  if (rows.size() != n * sizeof(std::int64_t)) {
    return InternalError("aggregate query returned an unexpected row size");
  }
  out->resize(n);
  std::memcpy(out->data(), rows.data(), rows.size());
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// HostQueryTask

HostQueryTask::HostQueryTask(Database* db, const exec::BoundQuery* bound,
                             SimTime start)
    : HostQueryTask(db, bound, start, 0, ~0ull, /*partial=*/false) {}

HostQueryTask::HostQueryTask(Database* db, const exec::BoundQuery* bound,
                             SimTime start, std::uint64_t first_page,
                             std::uint64_t page_count, bool partial)
    : db_(db),
      bound_(bound),
      start_(start),
      tracer_(db->tracer()),
      partial_(partial) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(bound != nullptr);
  const std::uint64_t table_pages = bound->outer->page_count;
  scan_begin_ = std::min(first_page, table_pages);
  scan_end_ = page_count >= table_pages - scan_begin_
                  ? table_pages
                  : scan_begin_ + page_count;
  page_ = scan_begin_;
  // Partial fragments never run joins: the build would repeat per
  // fragment and double-charge, and the hybrid join does real work at
  // Finish() that partial mode suppresses.
  SMARTSSD_CHECK(!partial_ || !bound->spec->join.has_value());
}

bool HostQueryTask::Fragmented() const {
  return partial_ || scan_begin_ != 0 ||
         scan_end_ != bound_->outer->page_count;
}

HostQueryTask::~HostQueryTask() { CloseSpanForError(); }

void HostQueryTask::CloseSpanForError() {
  // Same close the old RAII query span applied on error paths: the best
  // known end time is the tracer's high-water mark.
  if (tracer_ != nullptr && span_id_ != obs::kNoSpan && !span_ended_) {
    tracer_->End(span_id_, std::max(start_, tracer_->latest_time()));
    span_ended_ = true;
  }
}

StepOutcome HostQueryTask::FailWith(const Status& error) {
  CloseSpanForError();
  final_result_ = error;
  state_ = State::kDone;
  return {.at = std::max(start_, end_), .finished = true};
}

Result<QueryResult> HostQueryTask::TakeResult() {
  SMARTSSD_CHECK(finished());
  SMARTSSD_CHECK(final_result_.has_value());
  return std::move(*final_result_);
}

StepOutcome HostQueryTask::Step() {
  switch (state_) {
    case State::kStart:
      return StepStart();
    case State::kBuildRead:
      return StepBuildRead();
    case State::kBuildFinish:
      return StepBuildFinish();
    case State::kPrepareScan:
      return StepPrepareScan();
    case State::kScan:
      return StepScan();
    case State::kFinish:
      return StepFinish();
    case State::kDone:
      break;
  }
  SMARTSSD_CHECK(false);  // Step() on a finished host query task
  return {};
}

StepOutcome HostQueryTask::StepStart() {
  Result<storage::Schema> output_schema = OutputSchema(*bound_);
  if (!output_schema.ok()) {
    // Pre-span failure, exactly as the monolithic body: no trace, no
    // stats.
    final_result_ = output_schema.status();
    state_ = State::kDone;
    return {.at = start_, .finished = true};
  }
  result_.output_schema = std::move(output_schema.value());
  QueryStats& stats = result_.stats;
  stats.query_name = bound_->spec->name;
  stats.device_name = std::string(db_->device().name());
  stats.target = ExecutionTarget::kHost;
  stats.layout = bound_->outer->layout;
  stats.start = start_;

  stage_before_ = db_->StageSnapshot();
  if (tracer_ != nullptr) {
    span_id_ = tracer_->Begin(db_->executor_track(), bound_->spec->name,
                              "query", start_);
    span_ended_ = false;
  }
  end_ = start_;
  io_done_ = start_;

  if (bound_->spec->join.has_value()) {
    builder_.emplace(bound_);
    state_ = bound_->inner->page_count > 0 ? State::kBuildRead
                                           : State::kBuildFinish;
  } else {
    state_ = State::kPrepareScan;
  }
  return {.at = start_};
}

StepOutcome HostQueryTask::StepBuildRead() {
  obs::ScopeGuard scope(tracer_, span_id_);
  const storage::TableInfo& inner = *bound_->inner;
  Result<std::pair<std::span<const std::byte>, SimTime>> page =
      db_->buffer_pool().GetPage(inner.first_lpn + build_page_, start_,
                                 inner.first_lpn + inner.page_count);
  if (!page.ok()) return FailWith(page.status());
  io_done_ = std::max(io_done_, page.value().second);
  const Status added = builder_->AddPage(page.value().first);
  if (!added.ok()) return FailWith(added);
  ++build_page_;
  if (build_page_ >= inner.page_count) state_ = State::kBuildFinish;
  return {.at = io_done_};
}

StepOutcome HostQueryTask::StepBuildFinish() {
  obs::ScopeGuard scope(tracer_, span_id_);
  const storage::TableInfo& inner = *bound_->inner;
  QueryStats& stats = result_.stats;
  hash_table_.emplace(builder_->TakeTable());
  const std::uint64_t cycles =
      exec::Cycles(builder_->counts(), exec::HostCostParams(inner.layout),
                   inner.schema.num_columns(), 0);
  end_ = db_->host().Execute(cycles, io_done_, "hash build");
  stats.counts += builder_->counts();
  stats.host_cycles += cycles;
  stats.pages_read += inner.page_count;
  stats.bytes_over_host_link +=
      inner.page_count *
      static_cast<std::uint64_t>(db_->device().page_size());
  if (tracer_ != nullptr) {
    tracer_->Complete(db_->executor_track(), "build", "phase", start_, end_,
                      {obs::Arg::Uint("pages", inner.page_count)});
  }
  state_ = State::kPrepareScan;
  return {.at = end_};
}

StepOutcome HostQueryTask::StepPrepareScan() {
  obs::ScopeGuard scope(tracer_, span_id_);
  const bool use_morsels = db_->options().host_threads > 1 &&
                           exec::MorselScanner::Eligible(*bound_) &&
                           !Fragmented();
  if (!use_morsels) {
    processor_.emplace(bound_,
                       hash_table_.has_value() ? &*hash_table_ : nullptr,
                       db_->options().kernel);
  }
  host_params_ = exec::HostCostParams(bound_->outer->layout);
  hash_entries_ = hash_table_.has_value() ? hash_table_->entries() : 0;
  const storage::TableInfo& outer = *bound_->outer;

  // Zone-map pruning: skip pages whose per-page [min, max] cannot
  // satisfy the predicate's column ranges.
  zone_map_ = db_->zone_map(bound_->spec->table);
  if (zone_map_ != nullptr) {
    for (auto& [col, range] :
         exec::ExtractColumnRanges(bound_->spec->predicate.get())) {
      if (col < bound_->outer_columns() && zone_map_->TracksColumn(col)) {
        prune_ranges_.emplace(col, range);
      }
    }
    if (!prune_ranges_.empty()) {
      // Checking the (host-cached) statistics costs a few cycles/page.
      // Fragments check only their own range, so per-fragment charges
      // sum to the monolithic whole-table charge.
      end_ = std::max(end_,
                      db_->host().Execute((scan_end_ - scan_begin_) * 2,
                                          start_, "zone check"));
    }
  }
  // Arm the batch-skip fast paths with the same statistics: pages that
  // survive the merged-interval pruning above can still be settled
  // wholesale per conjunct inside the batch loop (exec/batch_skip.h).
  if (processor_.has_value()) {
    processor_->SetZoneMap(zone_map_);
    armed_zone_map_ = zone_map_;
  }
  scan_started_ = end_;
  state_ = State::kScan;
  return {.at = end_};
}

StepOutcome HostQueryTask::StepScan() {
  if (!processor_.has_value()) return StepScanMorsel();
  obs::ScopeGuard scope(tracer_, span_id_);
  QueryStats& stats = result_.stats;
  const storage::TableInfo& outer = *bound_->outer;
  const std::uint64_t limit = outer.first_lpn + outer.page_count;
  // A co-scheduled writer can mark the table's zone map stale at any
  // step boundary, which destroys the map object. Re-fetch it each step
  // and stop pruning once it is gone: pages already pruned were pruned
  // while the statistics still covered every page image the scan could
  // observe, and un-pruned pages merely cost a read. The batch-skip
  // analysis holds a pointer into the map, so it must track the same
  // lifecycle: re-arm whenever the map object changed.
  zone_map_ = db_->zone_map(bound_->spec->table);
  if (zone_map_ != armed_zone_map_) {
    processor_->SetZoneMap(zone_map_);
    armed_zone_map_ = zone_map_;
  }
  while (page_ < scan_end_) {
    bool may_match = true;
    if (zone_map_ != nullptr) {
      for (const auto& [col, range] : prune_ranges_) {
        if (!zone_map_->PageMayMatch(page_, col, range.lo, range.hi)) {
          may_match = false;
          break;
        }
      }
    }
    if (!may_match) {
      ++stats.pages_skipped;
      ++page_;
      continue;  // pruned pages cost nothing: keep skipping
    }
    Result<std::pair<std::span<const std::byte>, SimTime>> page =
        db_->buffer_pool().GetPage(outer.first_lpn + page_, start_, limit);
    if (!page.ok()) return FailWith(page.status());
    exec::OpCounts page_counts;
    const Status processed = processor_->ProcessPage(
        page.value().first, page_, &page_counts, &result_.rows);
    if (!processed.ok()) return FailWith(processed);
    const std::uint64_t cycles =
        exec::Cycles(page_counts, host_params_,
                     outer.schema.num_columns(), hash_entries_);
    end_ = std::max(end_, db_->host().Execute(cycles, page.value().second,
                                              "scan batch"));
    stats.counts += page_counts;
    stats.host_cycles += cycles;
    ++pages_scanned_;
    ++page_;
    return {.at = end_};  // one scanned page per step
  }
  stats.pages_read += pages_scanned_;
  stats.bytes_over_host_link +=
      pages_scanned_ *
      static_cast<std::uint64_t>(db_->device().page_size());
  if (tracer_ != nullptr) {
    tracer_->Complete(db_->executor_track(), "scan", "phase", scan_started_,
                      end_,
                      {obs::Arg::Uint("pages_scanned", pages_scanned_),
                       obs::Arg::Uint("pages_skipped", stats.pages_skipped)});
  }
  state_ = State::kFinish;
  return {.at = end_};
}

StepOutcome HostQueryTask::StepScanMorsel() {
  obs::ScopeGuard scope(tracer_, span_id_);
  QueryStats& stats = result_.stats;
  const storage::TableInfo& outer = *bound_->outer;
  const std::uint64_t limit = outer.first_lpn + outer.page_count;
  // The whole scan runs inside this one step, so the zone map fetched
  // here stays alive throughout (writers only invalidate it at step
  // boundaries of *their* tasks, which cannot interleave mid-step).
  zone_map_ = db_->zone_map(bound_->spec->table);
  morsel_.emplace(bound_, hash_table_.has_value() ? &*hash_table_ : nullptr,
                  db_->options().kernel, zone_map_,
                  db_->options().host_threads);
  // Dispatch loop: identical page walk (pruning, buffer-pool fetches,
  // fetch ordering) to the serial StepScan, but page processing is
  // handed to the workers. Each submitted page's I/O-ready time is
  // recorded so the virtual-time replay below can issue the exact
  // host().Execute() sequence the serial loop would have.
  std::vector<SimTime> io_done;
  for (; page_ < scan_end_; ++page_) {
    bool may_match = true;
    if (zone_map_ != nullptr) {
      for (const auto& [col, range] : prune_ranges_) {
        if (!zone_map_->PageMayMatch(page_, col, range.lo, range.hi)) {
          may_match = false;
          break;
        }
      }
    }
    if (!may_match) {
      ++stats.pages_skipped;
      continue;
    }
    Result<std::pair<std::span<const std::byte>, SimTime>> page =
        db_->buffer_pool().GetPage(outer.first_lpn + page_, start_, limit);
    if (!page.ok()) return FailWith(page.status());
    io_done.push_back(page.value().second);
    morsel_->AddPage(page_, page.value().first);
  }
  const Status drained = morsel_->Drain();
  if (!drained.ok()) return FailWith(drained);
  // Virtual-time replay in submission order: byte-identical to the
  // serial loop because the per-page OpCounts are (count-identity
  // invariant) and the Execute() call sequence is.
  for (std::size_t i = 0; i < morsel_->pages_submitted(); ++i) {
    const exec::OpCounts& page_counts = morsel_->page_counts(i);
    const std::uint64_t cycles =
        exec::Cycles(page_counts, host_params_,
                     outer.schema.num_columns(), hash_entries_);
    end_ = std::max(end_, db_->host().Execute(cycles, io_done[i],
                                              "scan batch"));
    stats.counts += page_counts;
    stats.host_cycles += cycles;
    ++pages_scanned_;
  }
  morsel_->AppendRows(&result_.rows);
  stats.pages_read += pages_scanned_;
  stats.bytes_over_host_link +=
      pages_scanned_ *
      static_cast<std::uint64_t>(db_->device().page_size());
  if (tracer_ != nullptr) {
    tracer_->Complete(db_->executor_track(), "scan", "phase", scan_started_,
                      end_,
                      {obs::Arg::Uint("pages_scanned", pages_scanned_),
                       obs::Arg::Uint("pages_skipped", stats.pages_skipped)});
  }
  state_ = State::kFinish;
  return {.at = end_};
}

StepOutcome HostQueryTask::StepFinish() {
  obs::ScopeGuard scope(tracer_, span_id_);
  QueryStats& stats = result_.stats;
  const storage::TableInfo& outer = *bound_->outer;
  const SimTime finish_started = end_;
  exec::PageProcessor& processor =
      morsel_.has_value() ? morsel_->merged() : *processor_;
  exec::OpCounts final_counts;
  const Status finished_ok = processor.Finish(&final_counts, &result_.rows);
  if (!finished_ok.ok()) return FailWith(finished_ok);
  const std::uint64_t final_cycles =
      exec::Cycles(final_counts, host_params_, outer.schema.num_columns(),
                   hash_entries_);
  end_ = db_->host().Execute(final_cycles, end_, "finalize");
  // Partial fragments report body-only counts: the split coordinator
  // charges the canonical finish emission over the merged result once,
  // so per-fragment counts sum exactly to the monolithic run's.
  if (!partial_) stats.counts += final_counts;
  stats.host_cycles += final_cycles;
  if (tracer_ != nullptr) {
    tracer_->Complete(db_->executor_track(), "finish", "phase",
                      finish_started, end_);
  }

  stats.end = end_;
  stats.output_rows = result_.row_count();
  stats.output_bytes = result_.rows.size();
  stats.stage = db_->StageSnapshot() - stage_before_;
  if (!partial_) {
    // Per-query instruments count whole queries; the coordinator bumps
    // them once for the merged query.
    db_->metrics().counter("engine.queries")->Add();
    db_->metrics().histogram("engine.query_ns")->Record(stats.elapsed());
  }
  if (tracer_ != nullptr) {
    tracer_->End(span_id_, end_,
                 {obs::Arg::Str("target", "host"),
                  obs::Arg::Uint("rows", stats.output_rows)});
    span_ended_ = true;
  }
  const Status decoded =
      DecodeAggValues(*bound_, result_.rows, &result_.agg_values);
  if (!decoded.ok()) return FailWith(decoded);
  final_result_ = std::move(result_);
  state_ = State::kDone;
  return {.at = end_, .finished = true};
}

// ---------------------------------------------------------------------------
// DeviceQueryTask

DeviceQueryTask::DeviceQueryTask(Database* db,
                                 const exec::BoundQuery* bound,
                                 SimTime start, bool fallback,
                                 bool wait_for_grant)
    : DeviceQueryTask(db, bound, start, fallback, wait_for_grant, 0, ~0ull,
                      /*partial=*/false) {}

DeviceQueryTask::DeviceQueryTask(Database* db,
                                 const exec::BoundQuery* bound,
                                 SimTime start, bool fallback,
                                 bool wait_for_grant,
                                 std::uint64_t first_page,
                                 std::uint64_t page_count, bool partial)
    : db_(db),
      bound_(bound),
      start_(start),
      fallback_(fallback),
      wait_for_grant_(wait_for_grant),
      frag_first_(first_page),
      frag_pages_(page_count),
      partial_(partial),
      tracer_(db->tracer()),
      failed_at_(start) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(bound != nullptr);
  SMARTSSD_CHECK(!partial_ || !bound->spec->join.has_value());
}

DeviceQueryTask::~DeviceQueryTask() { CloseSpanForError(); }

void DeviceQueryTask::CloseSpanForError() {
  if (tracer_ != nullptr && span_id_ != obs::kNoSpan && !span_ended_) {
    tracer_->End(span_id_, std::max(start_, tracer_->latest_time()));
    span_ended_ = true;
  }
}

StepOutcome DeviceQueryTask::FinishWithError(const Status& error) {
  CloseSpanForError();
  final_result_ = error;
  state_ = State::kDone;
  return {.at = std::max(start_, failed_at_), .finished = true};
}

Result<QueryResult> DeviceQueryTask::TakeResult() {
  SMARTSSD_CHECK(finished());
  SMARTSSD_CHECK(final_result_.has_value());
  return std::move(*final_result_);
}

StepOutcome DeviceQueryTask::Step() {
  switch (state_) {
    case State::kStart:
      return StepStart();
    case State::kSession:
      return StepSession();
    case State::kHostRerun:
      return StepHostRerun();
    case State::kDone:
      break;
  }
  SMARTSSD_CHECK(false);  // Step() on a finished device query task
  return {};
}

StepOutcome DeviceQueryTask::StepStart() {
  outer_stage_before_ = db_->StageSnapshot();
  if (!db_->smart_capable()) {
    return FinishWithError(FailedPreconditionError(
        "pushdown requires a Smart SSD device"));
  }
  // Correctness gate from Section 4.3: the device must not compute over
  // pages the host has modified but not written back.
  const storage::TableInfo& outer = *bound_->outer;
  if (db_->buffer_pool().HasDirtyInRange(outer.first_lpn,
                                         outer.page_count) ||
      (bound_->inner != nullptr &&
       db_->buffer_pool().HasDirtyInRange(bound_->inner->first_lpn,
                                          bound_->inner->page_count))) {
    return FinishWithError(FailedPreconditionError(
        "pushdown refused: dirty pages in the buffer pool"));
  }

  Result<storage::Schema> output_schema = OutputSchema(*bound_);
  if (!output_schema.ok()) return FinishWithError(output_schema.status());
  result_.output_schema = std::move(output_schema.value());
  QueryStats& stats = result_.stats;
  stats.query_name = bound_->spec->name;
  stats.device_name = std::string(db_->device().name());
  stats.target = ExecutionTarget::kSmartSsd;
  stats.layout = bound_->outer->layout;
  stats.start = start_;

  stage_before_ = db_->StageSnapshot();
  if (tracer_ != nullptr) {
    span_id_ = tracer_->Begin(db_->executor_track(), bound_->spec->name,
                              "query", start_);
    span_ended_ = false;
  }
  if (const storage::ZoneMap* map = db_->zone_map(bound_->spec->table);
      map != nullptr) {
    device_zone_map_.emplace(*map);
  }
  exec::HybridJoinConfig spill = db_->options().join_spill;
  if (bound_->spec->join.has_value()) {
    spill.budget_bytes = ResolveJoinBudget(*db_, *bound_);
    // The spill allocator grows down from the top of the LPN space; tell
    // it where the catalog's extents end before any session may spill.
    db_->ssd()->set_spill_floor(db_->catalog().pages_allocated());
  }
  program_.emplace(bound_,
                   device_zone_map_.has_value() ? &*device_zone_map_ : nullptr,
                   db_->options().kernel, spill, db_->device().page_size(),
                   frag_first_, frag_pages_);
  session_ = db_->runtime()->StartSession(*program_, db_->options().polling,
                                          start_, &result_.rows);
  state_ = State::kSession;
  return {.at = start_};
}

StepOutcome DeviceQueryTask::StepSession() {
  if (wait_for_grant_ && !session_started_ &&
      db_->runtime()->session_slots_free() <= 0) {
    if (fallback_ && db_->circuit_breaker().open()) {
      // Every session grant is taken and the breaker says the device is
      // failing. The grant holders are likely dying sessions, and while
      // the breaker is open the planner routes new work around the
      // device — so no healthy session is coming to free a slot, and a
      // parked task would wait out the whole outage (or forever, if the
      // holder is wedged). Redispatch to the host instead. This task
      // never touched the device: no breaker failure is recorded and
      // the stats report zero device attempts.
      CloseSpanForError();
      device_error_ = ResourceExhaustedError(
          "session grant unavailable while the device breaker is open");
      if (tracer_ != nullptr) {
        tracer_->Instant(
            db_->executor_track(), "fallback to host", "query", start_,
            {obs::Arg::Str("reason", FallbackReasonToken(device_error_)),
             obs::Arg::Str("error", device_error_.message())});
      }
      db_->metrics().counter("engine.fallbacks")->Add();
      fell_back_ = true;
      redispatched_without_attempt_ = true;
      host_rerun_.emplace(db_, bound_, start_, frag_first_, frag_pages_,
                          partial_);
      state_ = State::kHostRerun;
      return {.at = start_};
    }
    return {.at = start_, .waiting_for_grant = true};
  }
  Result<SimTime> stepped = InternalError("unreachable");
  {
    obs::ScopeGuard scope(tracer_, span_id_);
    stepped = session_->Step();
    session_started_ = true;
  }
  if (!stepped.ok()) {
    failed_at_ = session_->fail_time();
    return HandleDeviceError(stepped.status());
  }
  if (!session_->finished()) return {.at = stepped.value()};

  const smart::SessionStats& session = session_->stats();
  QueryStats& stats = result_.stats;
  stats.session = session;
  stats.end = session.close_done;
  stats.embedded_cycles = session.embedded_cycles;
  // Partial fragments report body-only counts (see HostQueryTask): the
  // split coordinator synthesizes the canonical finish charge over the
  // merged result.
  stats.counts =
      partial_ ? program_->CountsExcludingFinish() : program_->counts();
  stats.join_spill = program_->hybrid_stats();
  stats.pages_read = session.pages_processed;
  stats.pages_skipped = program_->pages_skipped();
  // Host-link traffic: result bytes plus one command round per
  // OPEN/GET/CLOSE exchange.
  stats.bytes_over_host_link =
      session.result_bytes + (session.gets_issued + 2) * 64;
  stats.output_rows = result_.row_count();
  stats.output_bytes = result_.rows.size();
  stats.stage = db_->StageSnapshot() - stage_before_;
  if (!partial_) {
    db_->metrics().counter("engine.queries")->Add();
    db_->metrics().histogram("engine.query_ns")->Record(stats.elapsed());
  }
  if (tracer_ != nullptr) {
    tracer_->End(span_id_, stats.end,
                 {obs::Arg::Str("target", "smart-ssd"),
                  obs::Arg::Uint("rows", stats.output_rows)});
    span_ended_ = true;
  }
  const Status decoded =
      DecodeAggValues(*bound_, result_.rows, &result_.agg_values);
  if (!decoded.ok()) return FinishWithError(decoded);
  if (fallback_) {
    db_->circuit_breaker().RecordSuccess(stats.end);
  }
  final_result_ = std::move(result_);
  state_ = State::kDone;
  return {.at = stats.end, .finished = true};
}

StepOutcome DeviceQueryTask::HandleDeviceError(const Status& error) {
  // The device query span dies with the session, before any fallback
  // bookkeeping — the same order the blocking wrapper produced.
  CloseSpanForError();
  if (!fallback_ || !RetryableDeviceFailure(error)) {
    return FinishWithError(error);
  }
  device_error_ = error;
  db_->circuit_breaker().RecordFailure(failed_at_,
                                       FallbackReasonToken(error));
  if (tracer_ != nullptr) {
    tracer_->Instant(
        db_->executor_track(), "fallback to host", "query", failed_at_,
        {obs::Arg::Str("reason", FallbackReasonToken(error)),
         obs::Arg::Str("error", error.message())});
  }
  db_->metrics().counter("engine.fallbacks")->Add();
  // Degraded execution: redo the whole query on the host, starting when
  // the failed session was torn down, so the timeline stays consistent
  // and the results stay byte-identical to a clean pushdown.
  fell_back_ = true;
  host_rerun_.emplace(db_, bound_, std::max(start_, failed_at_),
                      frag_first_, frag_pages_, partial_);
  state_ = State::kHostRerun;
  return {.at = std::max(start_, failed_at_)};
}

StepOutcome DeviceQueryTask::StepHostRerun() {
  StepOutcome outcome = host_rerun_->Step();
  if (!outcome.finished) return outcome;
  Result<QueryResult> rerun = host_rerun_->TakeResult();
  if (!rerun.ok()) {
    final_result_ = std::move(rerun);
    state_ = State::kDone;
    return outcome;
  }
  QueryResult result = std::move(rerun.value());
  result.stats.start = start_;  // the query began at the pushdown attempt
  result.stats.fell_back = true;
  result.stats.device_attempts = redispatched_without_attempt_ ? 0 : 1;
  result.stats.fallback_reason = FallbackReasonString(device_error_);
  // The breakdown must cover the wasted device attempt too, not just the
  // host re-run.
  result.stats.stage = db_->StageSnapshot() - outer_stage_before_;
  final_result_ = std::move(result);
  state_ = State::kDone;
  return outcome;
}

// ---------------------------------------------------------------------------
// SplitScanTask

SplitScanTask::SplitScanTask(Database* db, const exec::BoundQuery* bound,
                             const std::vector<ScanFragment>& fragments,
                             SimTime start, bool wait_for_grant)
    : db_(db), bound_(bound), start_(start), end_(start) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(bound != nullptr);
  SMARTSSD_CHECK(!fragments.empty());
  SMARTSSD_CHECK(!bound->spec->join.has_value());
  stage_before_ = db->StageSnapshot();
  for (const ScanFragment& placement : fragments) {
    Fragment& fragment = fragments_.emplace_back();
    fragment.placement = placement;
    fragment.ready = start;
    if (placement.target == ExecutionTarget::kSmartSsd) {
      fragment.device.emplace(db, bound, start, /*fallback=*/true,
                              wait_for_grant, placement.first_page,
                              placement.page_count, /*partial=*/true);
    } else {
      fragment.host.emplace(db, bound, start, placement.first_page,
                            placement.page_count, /*partial=*/true);
    }
  }
}

Result<QueryResult> SplitScanTask::TakeResult() {
  SMARTSSD_CHECK(finished());
  SMARTSSD_CHECK(final_result_.has_value());
  return std::move(*final_result_);
}

StepOutcome SplitScanTask::StepFragment(Fragment& fragment) {
  return fragment.host.has_value() ? fragment.host->Step()
                                   : fragment.device->Step();
}

StepOutcome SplitScanTask::Step() {
  SMARTSSD_CHECK(!done_);
  for (;;) {
    // Earliest-ready unfinished, unparked fragment; lowest index breaks
    // ties. Deterministic: ready times are virtual, order is fixed.
    Fragment* next = nullptr;
    bool any_unfinished = false;
    bool have_parked = false;
    SimTime parked_at = 0;
    for (Fragment& fragment : fragments_) {
      if (fragment.done) continue;
      any_unfinished = true;
      if (fragment.parked) {
        if (!have_parked || fragment.ready < parked_at) {
          parked_at = fragment.ready;
        }
        have_parked = true;
        continue;
      }
      if (next == nullptr || fragment.ready < next->ready) next = &fragment;
    }
    if (!any_unfinished) return Merge();
    if (next == nullptr) {
      // Every remaining fragment waits on a device session grant.
      // Surface that to the scheduler; clear the park marks so the next
      // Step() (after a grant frees or the breaker opens) retries them.
      for (Fragment& fragment : fragments_) fragment.parked = false;
      return {.at = parked_at, .waiting_for_grant = true};
    }
    const StepOutcome outcome = StepFragment(*next);
    next->ready = std::max(outcome.at, next->ready);
    if (outcome.waiting_for_grant) {
      // Other fragments may still have work: park just this one and
      // pick again.
      next->parked = true;
      continue;
    }
    if (outcome.finished) {
      next->done = true;
      next->result = next->host.has_value() ? next->host->TakeResult()
                                            : next->device->TakeResult();
      end_ = std::max(end_, outcome.at);
      bool all_done = true;
      for (const Fragment& fragment : fragments_) {
        if (!fragment.done) {
          all_done = false;
          break;
        }
      }
      if (all_done) return Merge();
    }
    return {.at = outcome.at};
  }
}

StepOutcome SplitScanTask::Merge() {
  done_ = true;
  // First failure in fragment order wins — deterministic regardless of
  // which fragment's execution failed first on the timeline.
  for (Fragment& fragment : fragments_) {
    if (!fragment.result->ok()) {
      final_result_ = std::move(*fragment.result);
      return {.at = std::max(start_, end_), .finished = true};
    }
  }

  QueryResult result;
  Result<storage::Schema> output_schema = OutputSchema(*bound_);
  if (!output_schema.ok()) {
    final_result_ = output_schema.status();
    return {.at = std::max(start_, end_), .finished = true};
  }
  result.output_schema = std::move(output_schema.value());

  std::vector<const QueryResult*> partials;
  partials.reserve(fragments_.size());
  for (const Fragment& fragment : fragments_) {
    partials.push_back(&fragment.result->value());
  }
  MergedPartials merged =
      MergePartialResults(*bound_->spec, result.output_schema, partials);
  result.rows = std::move(merged.rows);
  result.agg_values = std::move(merged.agg_values);

  QueryStats& stats = result.stats;
  stats.query_name = bound_->spec->name;
  stats.device_name = std::string(db_->device().name());
  stats.layout = bound_->outer->layout;
  stats.start = start_;
  stats.split_scan = true;
  stats.fragments = static_cast<std::uint32_t>(fragments_.size());
  bool any_device = false;
  for (const Fragment& fragment : fragments_) {
    const QueryStats& child = fragment.result->value().stats;
    stats.counts += child.counts;
    stats.pages_read += child.pages_read;
    stats.pages_skipped += child.pages_skipped;
    stats.bytes_over_host_link += child.bytes_over_host_link;
    stats.host_cycles += child.host_cycles;
    stats.embedded_cycles += child.embedded_cycles;
    stats.device_attempts += child.device_attempts;
    stats.fell_back |= child.fell_back;
    if (child.fell_back && stats.fallback_reason.empty()) {
      stats.fallback_reason = child.fallback_reason;
    }
    any_device |= child.target == ExecutionTarget::kSmartSsd;
  }
  stats.target =
      any_device ? ExecutionTarget::kSmartSsd : ExecutionTarget::kHost;

  // Canonical finish emission over the merged result — exactly what the
  // monolithic Finish() charges: one OpCount/byte per emitted output row
  // for aggregation shapes, nothing for plain projections. The
  // fragments excluded their own finish emission, so adding this once
  // makes total counts byte-identical to the monolithic run.
  exec::OpCounts finish_counts;
  if (!bound_->spec->aggregates.empty()) {
    finish_counts.output_tuples = result.row_count();
    finish_counts.output_bytes = result.rows.size();
  }
  stats.counts += finish_counts;

  // Coordinator cost: touch every partial row once (the scatter-gather
  // merge charge) plus the canonical finish emission on the host CPU.
  const SimTime merge_started = end_;
  const std::uint64_t merge_cycles =
      MergeCostCycles(merged.input_rows, merged.input_bytes) +
      exec::Cycles(finish_counts,
                   exec::HostCostParams(bound_->outer->layout),
                   bound_->outer->schema.num_columns(), 0);
  end_ = db_->host().Execute(merge_cycles, end_, "split merge");
  stats.host_cycles += merge_cycles;

  stats.end = end_;
  stats.output_rows = result.row_count();
  stats.output_bytes = result.rows.size();
  stats.stage = db_->StageSnapshot() - stage_before_;
  db_->metrics().counter("engine.queries")->Add();
  db_->metrics().histogram("engine.query_ns")->Record(stats.elapsed());
  if (obs::Tracer* tracer = db_->tracer(); tracer != nullptr) {
    tracer->Complete(
        db_->executor_track(), "split merge", "phase", merge_started, end_,
        {obs::Arg::Uint("fragments", fragments_.size()),
         obs::Arg::Uint("rows", stats.output_rows)});
  }
  final_result_ = std::move(result);
  return {.at = end_, .finished = true};
}

// ---------------------------------------------------------------------------
// QueryTask

QueryTask::QueryTask(Database* db, const exec::QuerySpec* spec,
                     ExecutionTarget target, SimTime start,
                     bool wait_for_grant)
    : db_(db),
      spec_(spec),
      start_(start),
      wait_for_grant_(wait_for_grant),
      explicit_target_(target) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(spec != nullptr);
}

QueryTask::QueryTask(Database* db, const exec::QuerySpec* spec,
                     const PlanHints& hints, SimTime start,
                     bool wait_for_grant, const SignalSource* signals)
    : db_(db),
      spec_(spec),
      start_(start),
      wait_for_grant_(wait_for_grant),
      hints_(hints),
      signals_(signals) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(spec != nullptr);
}

Result<QueryResult> QueryTask::TakeResult() {
  SMARTSSD_CHECK(finished());
  if (final_result_.has_value()) return std::move(*final_result_);
  if (host_task_.has_value()) return host_task_->TakeResult();
  if (split_task_.has_value()) return split_task_->TakeResult();
  return device_task_->TakeResult();
}

StepOutcome QueryTask::Step() {
  if (state_ == State::kPlan) {
    Result<exec::BoundQuery> bound = exec::Bind(*spec_, db_->catalog());
    if (!bound.ok()) {
      final_result_ = bound.status();
      state_ = State::kDone;
      return {.at = start_, .finished = true};
    }
    bound_.emplace(std::move(bound.value()));
    if (explicit_target_.has_value()) {
      if (*explicit_target_ == ExecutionTarget::kSmartSsd) {
        device_task_.emplace(db_, &*bound_, start_, /*fallback=*/true,
                             wait_for_grant_);
      } else {
        host_task_.emplace(db_, &*bound_, start_);
      }
    } else {
      Result<PlacementDecision> placed =
          DecidePlacement(db_, *bound_, hints_, db_->options().placement,
                          start_, signals_);
      if (!placed.ok()) {
        final_result_ = placed.status();
        state_ = State::kDone;
        return {.at = start_, .finished = true};
      }
      const PlacementDecision& decision = placed.value();
      if (decision.split) {
        split_task_.emplace(db_, &*bound_, decision.fragments, start_,
                            wait_for_grant_);
      } else if (decision.target == ExecutionTarget::kSmartSsd) {
        device_task_.emplace(db_, &*bound_, start_, /*fallback=*/true,
                             wait_for_grant_);
      } else {
        host_task_.emplace(db_, &*bound_, start_);
      }
    }
    state_ = State::kRun;
    return {.at = start_};
  }
  SMARTSSD_CHECK(state_ == State::kRun);
  StepOutcome outcome = host_task_.has_value()    ? host_task_->Step()
                        : split_task_.has_value() ? split_task_->Step()
                                                  : device_task_->Step();
  if (outcome.finished) state_ = State::kDone;
  return outcome;
}

}  // namespace smartssd::engine
