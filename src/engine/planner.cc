#include "engine/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/cost_model.h"
#include "exec/hash_table.h"

namespace smartssd::engine {

namespace {

// Short-circuit discount: worst-case expression op counts overestimate
// the executed ops because conjunctions bail early; 0.6 matches the
// measured ratio on the paper's five-predicate Q6.
constexpr double kShortCircuitFactor = 0.6;

void ScaleEval(const expr::EvalStats& per_row, double rows, double factor,
               expr::EvalStats* out) {
  auto scale = [&](std::uint64_t v) {
    return static_cast<std::uint64_t>(static_cast<double>(v) * rows *
                                      factor);
  };
  out->comparisons += scale(per_row.comparisons);
  out->arithmetic += scale(per_row.arithmetic);
  out->column_reads += scale(per_row.column_reads);
  out->like_evals += scale(per_row.like_evals);
  out->case_evals += scale(per_row.case_evals);
}

// Streaming buffers, output staging, firmware slack — what the device
// needs on top of the join's resident build side.
constexpr std::uint64_t kJoinDramOverheadBytes = 4ull * 1024 * 1024;

}  // namespace

std::uint64_t ResolveJoinBudget(const Database& db,
                                const exec::BoundQuery& bound) {
  if (!bound.spec->join.has_value() || db.ssd() == nullptr) return 0;
  const std::uint64_t knob = db.options().join_spill.budget_bytes;
  if (knob > 0) return knob;
  const std::uint64_t table_bytes = exec::JoinHashTable::EstimateBytes(
      bound.inner->tuple_count, bound.payload_width);
  const std::uint64_t free = db.ssd()->device_dram_free();
  if (table_bytes + kJoinDramOverheadBytes <= free) return 0;
  // Derived budget: a quarter of what is left after the streaming
  // overhead, so the OPEN grant (budget + buffers + staging) still fits
  // with room for the other session state.
  return free > kJoinDramOverheadBytes
             ? (free - kJoinDramOverheadBytes) / 4
             : 0;
}

PushdownPlanner::PushdownPlanner(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

exec::OpCounts PushdownPlanner::EstimateCounts(
    const exec::BoundQuery& bound, const PlanHints& hints,
    exec::OpCounts* build_counts) const {
  const exec::QuerySpec& spec = *bound.spec;
  const double tuples = static_cast<double>(bound.outer->tuple_count);
  const double sel = std::clamp(hints.predicate_selectivity, 0.0, 1.0);

  exec::OpCounts counts;
  counts.pages = bound.outer->page_count;
  counts.tuples = bound.outer->tuple_count;

  if (spec.predicate != nullptr) {
    expr::EvalStats per_row;
    spec.predicate->EstimateOps(&per_row);
    ScaleEval(per_row, tuples, kShortCircuitFactor, &counts.eval);
  }
  const double passing = tuples * (spec.predicate ? sel : 1.0);
  if (spec.join.has_value()) {
    const double probes =
        spec.order == exec::PipelineOrder::kProbeFirst ? tuples : passing;
    counts.probes = static_cast<std::uint64_t>(probes);
    counts.eval.column_reads += counts.probes;  // FK read per probe
  }
  if (!spec.group_by.empty()) {
    counts.group_updates = static_cast<std::uint64_t>(passing);
  }
  if (spec.top_n.has_value()) {
    counts.topn_updates = static_cast<std::uint64_t>(passing);
  }
  for (const exec::AggSpec& agg : spec.aggregates) {
    if (agg.input != nullptr) {
      expr::EvalStats per_row;
      agg.input->EstimateOps(&per_row);
      ScaleEval(per_row, passing, 1.0, &counts.eval);
    }
    counts.agg_updates += static_cast<std::uint64_t>(passing);
  }
  if (!spec.projection.empty()) {
    std::uint32_t width = 0;
    for (const int col : spec.projection) {
      width += bound.combined_schema.column(col).width;
    }
    counts.output_tuples = static_cast<std::uint64_t>(passing);
    if (spec.top_n.has_value()) {
      counts.output_tuples =
          std::min<std::uint64_t>(counts.output_tuples, spec.top_n->limit);
    }
    counts.output_bytes = counts.output_tuples * width;
  } else {
    counts.output_tuples = 1;
    counts.output_bytes = 8ull * spec.aggregates.size();
  }

  if (build_counts != nullptr && spec.join.has_value()) {
    build_counts->pages = bound.inner->page_count;
    build_counts->tuples = bound.inner->tuple_count;
    build_counts->hash_inserts = bound.inner->tuple_count;
    build_counts->eval.column_reads =
        bound.inner->tuple_count *
        (1 + bound.spec->join->inner_payload_cols.size());
  }
  return counts;
}

double PushdownPlanner::EstimateHostSeconds(const exec::BoundQuery& bound,
                                            const PlanHints& hints) const {
  exec::OpCounts build_counts;
  const exec::OpCounts counts = EstimateCounts(bound, hints, &build_counts);
  const std::uint32_t page_size = db_->device().page_size();
  const std::uint64_t inner_pages =
      bound.inner == nullptr ? 0 : bound.inner->page_count;
  const double bytes = static_cast<double>(
      (bound.outer->page_count + inner_pages) * page_size);
  const double io_s =
      bytes /
      static_cast<double>(db_->EstimatedHostReadBytesPerSecond());
  const std::uint64_t cycles =
      exec::Cycles(counts, exec::HostCostParams(bound.outer->layout),
                   bound.outer->schema.num_columns(),
                   bound.inner == nullptr ? 0 : bound.inner->tuple_count) +
      (bound.inner == nullptr
           ? 0
           : exec::Cycles(build_counts,
                          exec::HostCostParams(bound.inner->layout),
                          bound.inner->schema.num_columns(), 0));
  const double cpu_s =
      static_cast<double>(cycles) /
      static_cast<double>(db_->host().total_cycles_per_second());
  return std::max(io_s, cpu_s);
}

double PushdownPlanner::EstimateSmartSeconds(const exec::BoundQuery& bound,
                                             const PlanHints& hints) const {
  if (!db_->smart_capable()) {
    return std::numeric_limits<double>::infinity();
  }
  exec::OpCounts build_counts;
  const exec::OpCounts counts = EstimateCounts(bound, hints, &build_counts);
  const std::uint32_t page_size = db_->device().page_size();
  const std::uint64_t inner_pages =
      bound.inner == nullptr ? 0 : bound.inner->page_count;
  const double bytes = static_cast<double>(
      (bound.outer->page_count + inner_pages) * page_size);
  const double io_s =
      bytes /
      static_cast<double>(db_->EstimatedInternalReadBytesPerSecond());
  const auto& cpu = db_->options().ssd.embedded_cpu;
  const double device_cps =
      static_cast<double>(cpu.cores) * static_cast<double>(cpu.clock_hz);
  const std::uint64_t cycles =
      exec::Cycles(counts, exec::EmbeddedCostParams(bound.outer->layout),
                   bound.outer->schema.num_columns(),
                   bound.inner == nullptr ? 0 : bound.inner->tuple_count) +
      (bound.inner == nullptr
           ? 0
           : exec::Cycles(build_counts,
                          exec::EmbeddedCostParams(bound.inner->layout),
                          bound.inner->schema.num_columns(), 0));
  const double cpu_s = static_cast<double>(cycles) / device_cps;
  const double transfer_s =
      static_cast<double>(counts.output_bytes) /
      static_cast<double>(ssd::EffectiveBytesPerSecond(
          db_->options().ssd.host_interface.standard));
  // Hybrid-join spill traffic: the fraction of the build side that does
  // not fit the budget is written to flash and re-read once per resolve
  // pass, and the deferred probe records make the same round trip. This
  // rides the internal data path, so it adds to the I/O stage.
  double spill_s = 0;
  if (bound.spec->join.has_value()) {
    const std::uint64_t budget = ResolveJoinBudget(*db_, bound);
    const std::uint64_t table_bytes = exec::JoinHashTable::EstimateBytes(
        bound.inner->tuple_count, bound.payload_width);
    if (budget > 0 && table_bytes > budget) {
      const double spilled_fraction =
          1.0 - static_cast<double>(budget) /
                    static_cast<double>(table_bytes);
      const double fanout = static_cast<double>(
          std::max<std::uint32_t>(db_->options().join_spill.fanout, 2));
      const double passes = std::max(
          1.0, std::ceil(std::log(static_cast<double>(table_bytes) /
                                  static_cast<double>(budget)) /
                         std::log(fanout)));
      const double build_bytes =
          static_cast<double>(inner_pages) * page_size;
      const double probe_bytes =
          static_cast<double>(counts.probes) *
          static_cast<double>(bound.outer->schema.tuple_size() + 8);
      spill_s = spilled_fraction * (build_bytes + probe_bytes) * 2.0 *
                passes /
                static_cast<double>(
                    db_->EstimatedInternalReadBytesPerSecond());
    }
  }
  return std::max({io_s + spill_s, cpu_s, transfer_s});
}

std::optional<std::string> PushdownPlanner::DeviceConstraint(
    const exec::BoundQuery& bound) const {
  if (!db_->smart_capable()) {
    return "device has no Smart SSD runtime";
  }
  const BufferPool& pool = db_->buffer_pool();
  const storage::TableInfo& outer = *bound.outer;
  if (pool.HasDirtyInRange(outer.first_lpn, outer.page_count) ||
      (bound.inner != nullptr &&
       pool.HasDirtyInRange(bound.inner->first_lpn,
                            bound.inner->page_count))) {
    return "coherence: dirty pages of this table in the buffer pool";
  }
  if (bound.spec->join.has_value()) {
    const std::uint64_t table_bytes = exec::JoinHashTable::EstimateBytes(
        bound.inner->tuple_count, bound.payload_width);
    const std::uint64_t budget = ResolveJoinBudget(*db_, bound);
    const bool hybrid = budget > 0 && table_bytes > budget;
    if (hybrid && budget < kMinJoinBudgetBytes) {
      return "join budget below the hybrid spill floor";
    }
    const std::uint64_t resident =
        (hybrid ? budget : table_bytes) + 2ull * 1024 * 1024;
    if (resident > db_->ssd()->device_dram_free()) {
      return hybrid ? "join budget exceeds device DRAM"
                    : "join hash table exceeds device DRAM";
    }
  }
  return std::nullopt;
}

Result<PlanDecision> PushdownPlanner::Decide(const exec::BoundQuery& bound,
                                             const PlanHints& hints,
                                             SimTime now) const {
  PlanDecision decision;
  decision.est_host_seconds = EstimateHostSeconds(bound, hints);

  if (!db_->smart_capable()) {
    decision.target = ExecutionTarget::kHost;
    decision.reason = "device has no Smart SSD runtime";
    return decision;
  }
  if (db_->circuit_breaker().ShouldBypass(now)) {
    decision.target = ExecutionTarget::kHost;
    decision.reason =
        "circuit breaker open after repeated device failures";
    return decision;
  }
  decision.est_smart_seconds = EstimateSmartSeconds(bound, hints);

  const BufferPool& pool = db_->buffer_pool();
  const storage::TableInfo& outer = *bound.outer;
  if (pool.HasDirtyInRange(outer.first_lpn, outer.page_count) ||
      (bound.inner != nullptr &&
       pool.HasDirtyInRange(bound.inner->first_lpn,
                            bound.inner->page_count))) {
    decision.target = ExecutionTarget::kHost;
    decision.reason =
        "coherence: dirty pages of this table in the buffer pool";
    return decision;
  }

  const std::uint64_t cached =
      pool.CachedInRange(outer.first_lpn, outer.page_count);
  if (outer.page_count > 0 &&
      static_cast<double>(cached) /
              static_cast<double>(outer.page_count) >=
          0.5) {
    decision.target = ExecutionTarget::kHost;
    decision.reason = "data mostly cached in the buffer pool";
    return decision;
  }

  if (bound.spec->join.has_value()) {
    const std::uint64_t table_bytes = exec::JoinHashTable::EstimateBytes(
        bound.inner->tuple_count, bound.payload_width);
    const std::uint64_t budget = ResolveJoinBudget(*db_, bound);
    const bool hybrid = budget > 0 && table_bytes > budget;
    if (hybrid && budget < kMinJoinBudgetBytes) {
      decision.target = ExecutionTarget::kHost;
      decision.reason = "join budget below the hybrid spill floor";
      return decision;
    }
    const std::uint64_t resident =
        (hybrid ? budget : table_bytes) + 2ull * 1024 * 1024;
    if (resident > db_->ssd()->device_dram_free()) {
      decision.target = ExecutionTarget::kHost;
      decision.reason = hybrid ? "join budget exceeds device DRAM"
                               : "join hash table exceeds device DRAM";
      return decision;
    }
  }

  if (decision.est_smart_seconds < decision.est_host_seconds) {
    decision.target = ExecutionTarget::kSmartSsd;
    decision.reason = "estimated cost favors in-SSD execution";
  } else {
    decision.target = ExecutionTarget::kHost;
    decision.reason = "estimated cost favors host execution";
  }
  return decision;
}

}  // namespace smartssd::engine
