#ifndef SMARTSSD_ENGINE_METRICS_H_
#define SMARTSSD_ENGINE_METRICS_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "exec/cost_model.h"
#include "smart/runtime.h"
#include "storage/types.h"

namespace smartssd::engine {

enum class ExecutionTarget { kHost, kSmartSsd };

inline const char* ExecutionTargetName(ExecutionTarget target) {
  return target == ExecutionTarget::kHost ? "host" : "smart-ssd";
}

// Everything measured about one query execution, on the virtual clock.
struct QueryStats {
  std::string query_name;
  std::string device_name;
  ExecutionTarget target = ExecutionTarget::kHost;
  storage::PageLayout layout = storage::PageLayout::kNsm;

  SimTime start = 0;
  SimTime end = 0;
  SimDuration elapsed() const { return end - start; }
  double elapsed_seconds() const { return ToSeconds(elapsed()); }

  // Bytes that crossed the host interface during the query: whole pages
  // on the host path, result tuples (plus command traffic) on the smart
  // path. This drives the energy model's data-rate term.
  std::uint64_t bytes_over_host_link = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_skipped = 0;  // zone-map pruning
  std::uint64_t output_rows = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t host_cycles = 0;
  std::uint64_t embedded_cycles = 0;
  exec::OpCounts counts;
  smart::SessionStats session;  // populated on the smart path

  // Degraded execution: set when a pushdown session failed with a
  // retryable device error and the executor transparently re-ran the
  // query on the host path. `target` then reports kHost (where the work
  // actually ran), `start` stays at the original pushdown attempt so
  // elapsed() includes the wasted device time, and `fallback_reason`
  // keeps the device error that forced the retreat.
  bool fell_back = false;
  std::uint32_t device_attempts = 0;
  std::string fallback_reason;

  double host_ingest_gbps() const {
    const double s = elapsed_seconds();
    if (s <= 0) return 0;
    return static_cast<double>(bytes_over_host_link) / 1e9 / s;
  }
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_METRICS_H_
