#ifndef SMARTSSD_ENGINE_METRICS_H_
#define SMARTSSD_ENGINE_METRICS_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "exec/cost_model.h"
#include "exec/hybrid_join.h"
#include "smart/runtime.h"
#include "storage/types.h"

namespace smartssd::engine {

enum class ExecutionTarget { kHost, kSmartSsd };

inline const char* ExecutionTargetName(ExecutionTarget target) {
  return target == ExecutionTarget::kHost ? "host" : "smart-ssd";
}

// How the engine decides, per query, where the scan runs. kCostModel is
// the planner's historical estimate-based choice (the default);
// kAdaptive consults live scheduler/obs signals and may split one scan
// across both sides; kSplit always splits eligible scans by the cost
// model's host/device ratio. See engine/placement.h.
enum class PlacementPolicyKind {
  kStaticHost,
  kStaticDevice,
  kCostModel,
  kAdaptive,
  kSplit,
};

inline const char* PlacementPolicyName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kStaticHost:
      return "static-host";
    case PlacementPolicyKind::kStaticDevice:
      return "static-device";
    case PlacementPolicyKind::kCostModel:
      return "cost-model";
    case PlacementPolicyKind::kAdaptive:
      return "adaptive";
    case PlacementPolicyKind::kSplit:
      return "split";
  }
  return "unknown";
}

// Per-stage virtual busy time attributable to one query: the delta of
// every pipeline resource's accumulated busy time over the query's
// lifetime (the same occupancy the tracer records as spans, summed).
// This is the paper's bottleneck evidence in numeric form — on a cold
// run, the stage whose busy time approaches elapsed() is the stage that
// paces the configuration.
struct StageBreakdown {
  SimDuration flash_chip = 0;     // NAND sense (tR) across all chips
  SimDuration flash_channel = 0;  // channel bus + ECC across all channels
  SimDuration dram_bus = 0;       // device DRAM/DMA bus
  SimDuration host_link = 0;      // SATA/SAS link
  SimDuration embedded_cpu = 0;   // ARM-class cores (FTL + pushdown work)
  SimDuration host_cpu = 0;       // Xeon cores

  StageBreakdown operator-(const StageBreakdown& other) const {
    StageBreakdown d;
    d.flash_chip = flash_chip - other.flash_chip;
    d.flash_channel = flash_channel - other.flash_channel;
    d.dram_bus = dram_bus - other.dram_bus;
    d.host_link = host_link - other.host_link;
    d.embedded_cpu = embedded_cpu - other.embedded_cpu;
    d.host_cpu = host_cpu - other.host_cpu;
    return d;
  }
};

// Everything measured about one query execution, on the virtual clock.
struct QueryStats {
  std::string query_name;
  std::string device_name;
  ExecutionTarget target = ExecutionTarget::kHost;
  storage::PageLayout layout = storage::PageLayout::kNsm;

  SimTime start = 0;
  SimTime end = 0;
  SimDuration elapsed() const { return end - start; }
  double elapsed_seconds() const { return ToSeconds(elapsed()); }

  // Bytes that crossed the host interface during the query: whole pages
  // on the host path, result tuples (plus command traffic) on the smart
  // path. This drives the energy model's data-rate term.
  std::uint64_t bytes_over_host_link = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_skipped = 0;  // zone-map pruning
  std::uint64_t output_rows = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t host_cycles = 0;
  std::uint64_t embedded_cycles = 0;
  exec::OpCounts counts;
  smart::SessionStats session;  // populated on the smart path
  // Hybrid-join spill behavior on the smart path; all-zero when the
  // join stayed fully resident (or there was no join).
  exec::HybridJoinStats join_spill;

  // Degraded execution: set when a pushdown session failed with a
  // retryable device error and the executor transparently re-ran the
  // query on the host path. `target` then reports kHost (where the work
  // actually ran), `start` stays at the original pushdown attempt so
  // elapsed() includes the wasted device time, and `fallback_reason`
  // keeps the device error that forced the retreat.
  bool fell_back = false;
  std::uint32_t device_attempts = 0;
  std::string fallback_reason;

  // Split-scan execution: the scan ran as `fragments` page-range
  // fragments placed independently on host/device, with partials merged
  // in fragment order. `target` then reports kSmartSsd when any
  // fragment ran on the device.
  bool split_scan = false;
  std::uint32_t fragments = 0;

  // Busy-time deltas per pipeline stage (device stages stay zero on the
  // HDD configuration and on warm runs served from the buffer pool).
  StageBreakdown stage;

  double host_ingest_gbps() const {
    const double s = elapsed_seconds();
    if (s <= 0) return 0;
    return static_cast<double>(bytes_over_host_link) / 1e9 / s;
  }
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_METRICS_H_
