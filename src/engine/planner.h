#ifndef SMARTSSD_ENGINE_PLANNER_H_
#define SMARTSSD_ENGINE_PLANNER_H_

#include <optional>
#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "exec/query_spec.h"

namespace smartssd::engine {

// Optimizer-style hints the caller may supply (the prototype has no
// statistics subsystem; the paper's special path likewise relied on
// knowing its queries).
struct PlanHints {
  // Fraction of outer tuples surviving the predicate.
  double predicate_selectivity = 0.1;
};

struct PlanDecision {
  ExecutionTarget target = ExecutionTarget::kHost;
  std::string reason;
  double est_host_seconds = 0;
  double est_smart_seconds = 0;
};

// Below this resident budget the hybrid join degenerates (partitions
// keep exceeding the grant past the recursion limit); the planner
// routes such queries to the host instead.
inline constexpr std::uint64_t kMinJoinBudgetBytes = 4096;

// Resolves the memory budget a pushdown join of `bound` on `db` would
// run under: the configured knob (options().join_spill.budget_bytes)
// when set; otherwise 0 (unconstrained simple hash join) while the
// estimated hash table plus streaming overhead fits free device DRAM;
// otherwise a budget derived from the free DRAM, so an oversized build
// engages the hybrid spill path instead of falling off the old routing
// cliff. Returns 0 for non-joins and non-smart devices. Both the
// planner's cost model and DeviceQueryTask use this, so the predicted
// mode always matches what the program actually runs.
std::uint64_t ResolveJoinBudget(const Database& db,
                                const exec::BoundQuery& bound);

// Decides whether to run a query the usual way or push it into the
// Smart SSD. Encodes the rules Section 4.3 lays out:
//
//   1. no smart runtime -> host (trivially);
//   2. dirty pages of any involved table in the buffer pool -> host
//      (the device would compute over stale data);
//   3. data already mostly cached -> host (pushdown would re-read flash
//      for pages RAM already holds);
//   4. the join's resident memory must fit device DRAM: the whole hash
//      table in unconstrained mode, the spill budget in hybrid mode —
//      and a budget below the spill floor goes to the host outright;
//   5. otherwise, estimated cost decides: each path is a pipeline whose
//      elapsed time is the max of its stage times (I/O, CPU, result
//      transfer).
//
// Plus one health rule ahead of all cost reasoning: while the database's
// circuit breaker is open (repeated pushdown session failures, still in
// cool-down at virtual time `now`), route to the host without touching
// the device.
class PushdownPlanner {
 public:
  explicit PushdownPlanner(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(PushdownPlanner);

  Result<PlanDecision> Decide(const exec::BoundQuery& bound,
                              const PlanHints& hints,
                              SimTime now = 0) const;

  // The cost submodel, exposed for tests and ablations: estimated
  // elapsed seconds for each path.
  double EstimateHostSeconds(const exec::BoundQuery& bound,
                             const PlanHints& hints) const;
  double EstimateSmartSeconds(const exec::BoundQuery& bound,
                              const PlanHints& hints) const;

  // The hard device-eligibility constraints of Decide() — rules 1, 2,
  // and 4, without the breaker's (mutating) bypass check or the cost
  // heuristics — as a pure predicate for the placement layer's
  // adaptive/split policies. Returns the refusal reason, or nullopt
  // when the device may legally run the query.
  std::optional<std::string> DeviceConstraint(
      const exec::BoundQuery& bound) const;

 private:
  exec::OpCounts EstimateCounts(const exec::BoundQuery& bound,
                                const PlanHints& hints,
                                exec::OpCounts* build_counts) const;

  Database* db_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_PLANNER_H_
