#ifndef SMARTSSD_ENGINE_PLANNER_H_
#define SMARTSSD_ENGINE_PLANNER_H_

#include <string>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "exec/query_spec.h"

namespace smartssd::engine {

// Optimizer-style hints the caller may supply (the prototype has no
// statistics subsystem; the paper's special path likewise relied on
// knowing its queries).
struct PlanHints {
  // Fraction of outer tuples surviving the predicate.
  double predicate_selectivity = 0.1;
};

struct PlanDecision {
  ExecutionTarget target = ExecutionTarget::kHost;
  std::string reason;
  double est_host_seconds = 0;
  double est_smart_seconds = 0;
};

// Decides whether to run a query the usual way or push it into the
// Smart SSD. Encodes the rules Section 4.3 lays out:
//
//   1. no smart runtime -> host (trivially);
//   2. dirty pages of any involved table in the buffer pool -> host
//      (the device would compute over stale data);
//   3. data already mostly cached -> host (pushdown would re-read flash
//      for pages RAM already holds);
//   4. the join hash table must fit device DRAM -> else host;
//   5. otherwise, estimated cost decides: each path is a pipeline whose
//      elapsed time is the max of its stage times (I/O, CPU, result
//      transfer).
//
// Plus one health rule ahead of all cost reasoning: while the database's
// circuit breaker is open (repeated pushdown session failures, still in
// cool-down at virtual time `now`), route to the host without touching
// the device.
class PushdownPlanner {
 public:
  explicit PushdownPlanner(Database* db);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(PushdownPlanner);

  Result<PlanDecision> Decide(const exec::BoundQuery& bound,
                              const PlanHints& hints,
                              SimTime now = 0) const;

  // The cost submodel, exposed for tests and ablations: estimated
  // elapsed seconds for each path.
  double EstimateHostSeconds(const exec::BoundQuery& bound,
                             const PlanHints& hints) const;
  double EstimateSmartSeconds(const exec::BoundQuery& bound,
                              const PlanHints& hints) const;

 private:
  exec::OpCounts EstimateCounts(const exec::BoundQuery& bound,
                                const PlanHints& hints,
                                exec::OpCounts* build_counts) const;

  Database* db_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_PLANNER_H_
