#ifndef SMARTSSD_ENGINE_PARALLEL_H_
#define SMARTSSD_ENGINE_PARALLEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "engine/database.h"
#include "engine/executor.h"

namespace smartssd::engine {

// The end of Section 4.3's design spectrum, built out: "the host machine
// could simply be the coordinator that stages computation across an
// array of Smart SSDs, making the system look like a parallel DBMS with
// the master node being the host server, and the worker nodes ... being
// the Smart SSDs."
//
// A ParallelDatabase owns N single-device databases (the workers). Fact
// tables are horizontally partitioned across the workers in contiguous
// row ranges; small (join build-side) tables are replicated. A query is
// dispatched to every worker at the same virtual instant — each worker
// pushes it into its own Smart SSD — and the coordinator merges the
// partial results on the host:
//
//   * scalar aggregates combine by their function (SUM/COUNT add,
//     MIN/MAX fold);
//   * GROUP BY results merge key-wise;
//   * projections concatenate;
//   * top-N re-selects the global top k (the order column must be part
//     of the projection so the coordinator can see the keys).
//
// Modelling note: each worker device has a dedicated host link (one HBA
// port per device, as in the paper's four-port HBA testbed), and in
// pushdown mode the host does nothing per-tuple, so worker timelines are
// independent; the merge is charged to the coordinator's CPU after the
// last worker finishes.
struct ParallelQueryResult {
  storage::Schema output_schema;
  std::vector<std::byte> rows;
  std::vector<std::int64_t> agg_values;  // scalar aggregates, merged
  SimTime start = 0;
  SimTime end = 0;  // last worker done + merge
  std::vector<QueryStats> worker_stats;

  SimDuration elapsed() const { return end - start; }
  double elapsed_seconds() const { return ToSeconds(elapsed()); }
  std::uint64_t row_count() const {
    const std::uint32_t width = output_schema.tuple_size();
    return width == 0 ? 0 : rows.size() / width;
  }
};

class ParallelDatabase {
 public:
  ParallelDatabase(int workers, const DatabaseOptions& options);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ParallelDatabase);

  int workers() const { return static_cast<int>(workers_.size()); }
  Database& worker(int i) { return *workers_[static_cast<std::size_t>(i)]; }

  // Loads `row_count` rows partitioned into contiguous ranges, one per
  // worker. The generator sees *global* row indexes, so the partitioned
  // data is identical to a single-device load of the same table.
  Status LoadPartitionedTable(const std::string& name,
                              const storage::Schema& schema,
                              storage::PageLayout layout,
                              std::uint64_t row_count,
                              const storage::RowGenerator& gen);

  // Loads the full table on every worker (broadcast, for join inners).
  Status LoadReplicatedTable(const std::string& name,
                             const storage::Schema& schema,
                             storage::PageLayout layout,
                             std::uint64_t row_count,
                             const storage::RowGenerator& gen);

  // Dispatches the query to all workers at `start` and merges.
  Result<ParallelQueryResult> Execute(const exec::QuerySpec& spec,
                                      ExecutionTarget target,
                                      SimTime start = 0);

  void ResetForColdRun();

 private:
  Result<ParallelQueryResult> Merge(const exec::QuerySpec& spec,
                                    std::vector<QueryResult> partials,
                                    SimTime start);

  std::vector<std::unique_ptr<Database>> workers_;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_PARALLEL_H_
