#include "engine/executor.h"

#include <algorithm>
#include <cstring>

#include "engine/fallback_reason.h"
#include "exec/predicate_range.h"
#include "exec/pushdown_program.h"

namespace smartssd::engine {

namespace {

// Decodes the scalar aggregate row (n int64s) from the result bytes.
// Grouped aggregation results stay in `rows` (one row per group, per
// OutputSchema) and are not flattened into agg_values.
Status DecodeAggValues(const exec::BoundQuery& bound,
                       const std::vector<std::byte>& rows,
                       std::vector<std::int64_t>* out) {
  const std::size_t n = bound.spec->aggregates.size();
  if (n == 0 || !bound.spec->group_by.empty()) return Status::OK();
  if (rows.size() != n * sizeof(std::int64_t)) {
    return InternalError("aggregate query returned an unexpected row size");
  }
  out->resize(n);
  std::memcpy(out->data(), rows.data(), rows.size());
  return Status::OK();
}

}  // namespace

QueryExecutor::QueryExecutor(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

Result<QueryResult> QueryExecutor::Execute(const exec::QuerySpec& spec,
                                           ExecutionTarget target,
                                           SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(const exec::BoundQuery bound,
                            exec::Bind(spec, db_->catalog()));
  if (target == ExecutionTarget::kSmartSsd) {
    return ExecuteDeviceWithFallback(bound, start);
  }
  return ExecuteOnHost(bound, start);
}

Result<QueryResult> QueryExecutor::ExecuteAuto(const exec::QuerySpec& spec,
                                               const PlanHints& hints,
                                               SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(const exec::BoundQuery bound,
                            exec::Bind(spec, db_->catalog()));
  PushdownPlanner planner(db_);
  SMARTSSD_ASSIGN_OR_RETURN(const PlanDecision decision,
                            planner.Decide(bound, hints, start));
  if (decision.target == ExecutionTarget::kSmartSsd) {
    return ExecuteDeviceWithFallback(bound, start);
  }
  return ExecuteOnHost(bound, start);
}

Result<QueryResult> QueryExecutor::ExecuteDeviceWithFallback(
    const exec::BoundQuery& bound, SimTime start) {
  const StageBreakdown stage_before = db_->StageSnapshot();
  SimTime failed_at = start;
  Result<QueryResult> device = ExecuteOnDevice(bound, start, &failed_at);
  if (device.ok()) {
    db_->circuit_breaker().RecordSuccess(device.value().stats.end);
    return device;
  }
  if (!RetryableDeviceFailure(device.status())) {
    return device;
  }
  db_->circuit_breaker().RecordFailure(
      failed_at, FallbackReasonToken(device.status()));
  obs::Tracer* tracer = db_->tracer();
  if (tracer != nullptr) {
    tracer->Instant(
        db_->executor_track(), "fallback to host", "query", failed_at,
        {obs::Arg::Str("reason", FallbackReasonToken(device.status())),
         obs::Arg::Str("error", device.status().message())});
  }
  db_->metrics().counter("engine.fallbacks")->Add();
  // Degraded execution: redo the whole query on the host, starting when
  // the failed session was torn down, so the timeline stays consistent
  // and the results stay byte-identical to a clean pushdown.
  SMARTSSD_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecuteOnHost(bound, std::max(start, failed_at)));
  result.stats.start = start;  // the query began at the pushdown attempt
  result.stats.fell_back = true;
  result.stats.device_attempts = 1;
  result.stats.fallback_reason = FallbackReasonString(device.status());
  // The breakdown must cover the wasted device attempt too, not just the
  // host re-run.
  result.stats.stage = db_->StageSnapshot() - stage_before;
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteOnHost(
    const exec::BoundQuery& bound, SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(storage::Schema output_schema,
                            OutputSchema(bound));
  QueryResult result{.output_schema = std::move(output_schema),
                     .rows = {},
                     .agg_values = {},
                     .stats = {}};
  QueryStats& stats = result.stats;
  stats.query_name = bound.spec->name;
  stats.device_name = std::string(db_->device().name());
  stats.target = ExecutionTarget::kHost;
  stats.layout = bound.outer->layout;
  stats.start = start;

  const StageBreakdown stage_before = db_->StageSnapshot();
  obs::Tracer* tracer = db_->tracer();
  // RAII: error returns close the span at the tracer's high-water mark.
  obs::ScopedSpan query_span(tracer, db_->executor_track(),
                             bound.spec->name, "query", start);

  BufferPool& pool = db_->buffer_pool();
  HostMachine& host = db_->host();
  const std::uint32_t page_size = db_->device().page_size();
  SimTime end = start;

  // Build phase (joins): stream the inner table to the host and hash it
  // in host memory.
  std::optional<exec::JoinHashTable> hash_table;
  if (bound.spec->join.has_value()) {
    const storage::TableInfo& inner = *bound.inner;
    exec::OpCounts build_counts;
    SimTime io_done = start;
    auto read_page = [&](std::uint64_t page_index)
        -> Result<std::span<const std::byte>> {
      SMARTSSD_ASSIGN_OR_RETURN(
          auto page_and_time,
          pool.GetPage(inner.first_lpn + page_index, start,
                       inner.first_lpn + inner.page_count));
      io_done = std::max(io_done, page_and_time.second);
      return page_and_time.first;
    };
    SMARTSSD_ASSIGN_OR_RETURN(
        exec::JoinHashTable table,
        exec::BuildJoinHashTable(bound, read_page, &build_counts));
    hash_table.emplace(std::move(table));
    const std::uint64_t cycles =
        exec::Cycles(build_counts, exec::HostCostParams(inner.layout),
                     inner.schema.num_columns(), 0);
    end = host.Execute(cycles, io_done, "hash build");
    stats.counts += build_counts;
    stats.host_cycles += cycles;
    stats.pages_read += inner.page_count;
    stats.bytes_over_host_link +=
        inner.page_count * static_cast<std::uint64_t>(page_size);
    if (tracer != nullptr) {
      tracer->Complete(db_->executor_track(), "build", "phase", start, end,
                       {obs::Arg::Uint("pages", inner.page_count)});
    }
  }

  exec::PageProcessor processor(
      &bound, hash_table.has_value() ? &*hash_table : nullptr,
      db_->options().kernel);
  const exec::CpuCostParams host_params =
      exec::HostCostParams(bound.outer->layout);
  const std::uint64_t hash_entries =
      hash_table.has_value() ? hash_table->entries() : 0;
  const storage::TableInfo& outer = *bound.outer;
  const std::uint64_t limit = outer.first_lpn + outer.page_count;

  // Zone-map pruning: skip pages whose per-page [min, max] cannot
  // satisfy the predicate's column ranges.
  const storage::ZoneMap* zone_map = db_->zone_map(bound.spec->table);
  std::map<int, exec::ColumnRange> prune_ranges;
  if (zone_map != nullptr) {
    for (auto& [col, range] :
         exec::ExtractColumnRanges(bound.spec->predicate.get())) {
      if (col < bound.outer_columns() && zone_map->TracksColumn(col)) {
        prune_ranges.emplace(col, range);
      }
    }
    if (!prune_ranges.empty()) {
      // Checking the (host-cached) statistics costs a few cycles/page.
      end = std::max(end,
                     host.Execute(outer.page_count * 2, start, "zone check"));
    }
  }

  const SimTime scan_started = end;
  std::uint64_t pages_scanned = 0;
  for (std::uint64_t p = 0; p < outer.page_count; ++p) {
    bool may_match = true;
    for (const auto& [col, range] : prune_ranges) {
      if (!zone_map->PageMayMatch(p, col, range.lo, range.hi)) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      ++stats.pages_skipped;
      continue;
    }
    ++pages_scanned;
    SMARTSSD_ASSIGN_OR_RETURN(
        auto page_and_time,
        pool.GetPage(outer.first_lpn + p, start, limit));
    exec::OpCounts page_counts;
    SMARTSSD_RETURN_IF_ERROR(processor.ProcessPage(
        page_and_time.first, &page_counts, &result.rows));
    const std::uint64_t cycles =
        exec::Cycles(page_counts, host_params,
                     outer.schema.num_columns(), hash_entries);
    end = std::max(end,
                   host.Execute(cycles, page_and_time.second, "scan batch"));
    stats.counts += page_counts;
    stats.host_cycles += cycles;
  }
  stats.pages_read += pages_scanned;
  stats.bytes_over_host_link +=
      pages_scanned * static_cast<std::uint64_t>(page_size);
  if (tracer != nullptr) {
    tracer->Complete(db_->executor_track(), "scan", "phase", scan_started,
                     end,
                     {obs::Arg::Uint("pages_scanned", pages_scanned),
                      obs::Arg::Uint("pages_skipped", stats.pages_skipped)});
  }

  const SimTime finish_started = end;
  exec::OpCounts final_counts;
  SMARTSSD_RETURN_IF_ERROR(processor.Finish(&final_counts, &result.rows));
  const std::uint64_t final_cycles =
      exec::Cycles(final_counts, host_params, outer.schema.num_columns(),
                   hash_entries);
  end = host.Execute(final_cycles, end, "finalize");
  stats.counts += final_counts;
  stats.host_cycles += final_cycles;
  if (tracer != nullptr) {
    tracer->Complete(db_->executor_track(), "finish", "phase",
                     finish_started, end);
  }

  stats.end = end;
  stats.output_rows = result.row_count();
  stats.output_bytes = result.rows.size();
  stats.stage = db_->StageSnapshot() - stage_before;
  db_->metrics().counter("engine.queries")->Add();
  db_->metrics().histogram("engine.query_ns")->Record(stats.elapsed());
  if (tracer != nullptr) {
    query_span.End(end, {obs::Arg::Str("target", "host"),
                         obs::Arg::Uint("rows", stats.output_rows)});
  }
  SMARTSSD_RETURN_IF_ERROR(
      DecodeAggValues(bound, result.rows, &result.agg_values));
  return result;
}

Result<QueryResult> QueryExecutor::ExecuteOnDevice(
    const exec::BoundQuery& bound, SimTime start, SimTime* failed_at) {
  if (failed_at != nullptr) *failed_at = start;
  if (!db_->smart_capable()) {
    return FailedPreconditionError(
        "pushdown requires a Smart SSD device");
  }
  // Correctness gate from Section 4.3: the device must not compute over
  // pages the host has modified but not written back.
  const storage::TableInfo& outer = *bound.outer;
  if (db_->buffer_pool().HasDirtyInRange(outer.first_lpn,
                                         outer.page_count) ||
      (bound.inner != nullptr &&
       db_->buffer_pool().HasDirtyInRange(bound.inner->first_lpn,
                                          bound.inner->page_count))) {
    return FailedPreconditionError(
        "pushdown refused: dirty pages in the buffer pool");
  }

  SMARTSSD_ASSIGN_OR_RETURN(storage::Schema output_schema,
                            OutputSchema(bound));
  QueryResult result{.output_schema = std::move(output_schema),
                     .rows = {},
                     .agg_values = {},
                     .stats = {}};
  QueryStats& stats = result.stats;
  stats.query_name = bound.spec->name;
  stats.device_name = std::string(db_->device().name());
  stats.target = ExecutionTarget::kSmartSsd;
  stats.layout = bound.outer->layout;
  stats.start = start;

  const StageBreakdown stage_before = db_->StageSnapshot();
  obs::Tracer* tracer = db_->tracer();
  obs::ScopedSpan query_span(tracer, db_->executor_track(),
                             bound.spec->name, "query", start);

  exec::PushdownProgram program(&bound, db_->zone_map(bound.spec->table),
                                db_->options().kernel);
  SMARTSSD_ASSIGN_OR_RETURN(
      smart::SessionStats session,
      db_->runtime()->RunSession(program, db_->options().polling, start,
                                 &result.rows, failed_at));
  stats.session = session;
  stats.end = session.close_done;
  stats.embedded_cycles = session.embedded_cycles;
  stats.counts = program.counts();
  stats.pages_read = session.pages_processed;
  stats.pages_skipped = program.pages_skipped();
  // Host-link traffic: result bytes plus one command round per
  // OPEN/GET/CLOSE exchange.
  stats.bytes_over_host_link =
      session.result_bytes + (session.gets_issued + 2) * 64;
  stats.output_rows = result.row_count();
  stats.output_bytes = result.rows.size();
  stats.stage = db_->StageSnapshot() - stage_before;
  db_->metrics().counter("engine.queries")->Add();
  db_->metrics().histogram("engine.query_ns")->Record(stats.elapsed());
  if (tracer != nullptr) {
    query_span.End(stats.end, {obs::Arg::Str("target", "smart-ssd"),
                               obs::Arg::Uint("rows", stats.output_rows)});
  }
  SMARTSSD_RETURN_IF_ERROR(
      DecodeAggValues(bound, result.rows, &result.agg_values));
  return result;
}

}  // namespace smartssd::engine
