#include "engine/executor.h"

#include "engine/query_task.h"

namespace smartssd::engine {

QueryExecutor::QueryExecutor(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

Result<QueryResult> QueryExecutor::Execute(const exec::QuerySpec& spec,
                                           ExecutionTarget target,
                                           SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(const exec::BoundQuery bound,
                            exec::Bind(spec, db_->catalog()));
  if (target == ExecutionTarget::kSmartSsd) {
    return ExecuteDeviceWithFallback(bound, start);
  }
  return ExecuteOnHost(bound, start);
}

Result<QueryResult> QueryExecutor::ExecuteAuto(const exec::QuerySpec& spec,
                                               const PlanHints& hints,
                                               SimTime start) {
  // Routed by the database's placement policy (DatabaseOptions::
  // placement) through the resumable QueryTask, so split placements
  // work from the blocking path too. Under the default kCostModel
  // policy the task issues the identical Bind + planner.Decide +
  // host/device sequence this function historically inlined.
  QueryTask task(db_, &spec, hints, start, /*wait_for_grant=*/false);
  while (!task.finished()) task.Step();
  return task.TakeResult();
}

// The blocking entry points drive the resumable tasks to completion in a
// tight loop: the task then issues the identical resource-call sequence
// the old monolithic bodies did, so these paths are byte-identical to
// the pre-task executor — a property the differential and bench identity
// tests pin down. Interleaved execution lives in WorkloadScheduler.

Result<QueryResult> QueryExecutor::ExecuteDeviceWithFallback(
    const exec::BoundQuery& bound, SimTime start) {
  DeviceQueryTask task(db_, &bound, start, /*fallback=*/true,
                       /*wait_for_grant=*/false);
  while (!task.finished()) task.Step();
  return task.TakeResult();
}

Result<QueryResult> QueryExecutor::ExecuteOnHost(
    const exec::BoundQuery& bound, SimTime start) {
  HostQueryTask task(db_, &bound, start);
  while (!task.finished()) task.Step();
  return task.TakeResult();
}

Result<QueryResult> QueryExecutor::ExecuteOnDevice(
    const exec::BoundQuery& bound, SimTime start, SimTime* failed_at) {
  DeviceQueryTask task(db_, &bound, start, /*fallback=*/false,
                       /*wait_for_grant=*/false);
  while (!task.finished()) task.Step();
  if (failed_at != nullptr) *failed_at = task.failed_at();
  return task.TakeResult();
}

}  // namespace smartssd::engine
