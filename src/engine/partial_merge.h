#ifndef SMARTSSD_ENGINE_PARTIAL_MERGE_H_
#define SMARTSSD_ENGINE_PARTIAL_MERGE_H_

// Deterministic merge of per-partition partial query results, shared by
// the scatter-gather coordinators (ParallelDatabase and the fault-
// tolerant Fleet). The merge is a pure function of the partials *in the
// order given*, so a coordinator that fixes that order by partition id
// (never by completion order) gets byte-identical output no matter how
// the partitions' executions interleaved, hedged, or fell back.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "exec/query_spec.h"
#include "storage/schema.h"

namespace smartssd::engine {

// Coordinator-side merge cost, charged to the host CPU after the last
// partial arrives: touch every partial row once.
inline constexpr std::uint64_t kMergeCyclesPerRow = 40;
inline constexpr std::uint64_t kMergeCyclesPerByte = 1;

inline std::uint64_t MergeCostCycles(std::uint64_t rows,
                                     std::uint64_t bytes) {
  return rows * kMergeCyclesPerRow + bytes * kMergeCyclesPerByte;
}

// A spec is scatter-gather-mergeable unless it is a top-N whose ORDER BY
// column is missing from the projection (the coordinator re-selects the
// global top k from the merged rows, so it must see the keys).
Status ValidateMergeable(const exec::QuerySpec& spec);

struct MergedPartials {
  std::vector<std::byte> rows;
  std::vector<std::int64_t> agg_values;  // scalar aggregates, merged
  std::uint64_t input_rows = 0;   // across all partials, for merge cost
  std::uint64_t input_bytes = 0;
};

// Merges partials (all sharing `output_schema`) positionally:
//   * scalar aggregates combine by their function (SUM/COUNT add,
//     MIN/MAX fold);
//   * GROUP BY results merge key-wise (emission in memcmp key order,
//     matching the executors' GroupTable order);
//   * projections concatenate in the given partial order;
//   * top-N re-selects the global top k over the concatenation.
// `partials` must be non-empty and ordered by partition id.
MergedPartials MergePartialResults(
    const exec::QuerySpec& spec, const storage::Schema& output_schema,
    const std::vector<const QueryResult*>& partials);

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_PARTIAL_MERGE_H_
