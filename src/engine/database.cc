#include "engine/database.h"

namespace smartssd::engine {

DatabaseOptions DatabaseOptions::PaperHdd() {
  DatabaseOptions options;
  options.device = DeviceKind::kHdd;
  return options;
}

DatabaseOptions DatabaseOptions::PaperSsd() {
  DatabaseOptions options;
  options.device = DeviceKind::kSsd;
  options.ssd = ssd::SsdConfig::PaperSsd();
  return options;
}

DatabaseOptions DatabaseOptions::PaperSmartSsd() {
  DatabaseOptions options;
  options.device = DeviceKind::kSmartSsd;
  options.ssd = ssd::SsdConfig::PaperSmartSsd();
  return options;
}

Database::Database(const DatabaseOptions& options)
    : options_(options), breaker_(options.breaker) {
  switch (options.device) {
    case DeviceKind::kHdd: {
      device_ = std::make_unique<ssd::HddDevice>(options.hdd);
      break;
    }
    case DeviceKind::kSsd:
    case DeviceKind::kSmartSsd: {
      auto ssd = std::make_unique<ssd::SsdDevice>(options.ssd);
      ssd_ = ssd.get();
      device_ = std::move(ssd);
      if (options.device == DeviceKind::kSmartSsd) {
        runtime_ = std::make_unique<smart::SmartSsdRuntime>(ssd_);
      }
      break;
    }
  }
  catalog_ = std::make_unique<storage::Catalog>(device_->num_pages());
  pool_ = std::make_unique<BufferPool>(device_.get(),
                                       options.buffer_pool_pages);
  host_ = std::make_unique<HostMachine>(options.host);
  // Instruments are always on (lock-free bumps, no virtual-time reads);
  // tracing stays opt-in via AttachTracer.
  if (ssd_ != nullptr) ssd_->AttachMetrics(&metrics_);
  pool_->AttachMetrics(&metrics_);
}

void Database::AttachTracer(obs::Tracer* tracer,
                            std::string_view device_process,
                            std::string_view host_process) {
  tracer_ = tracer;
  if (ssd_ != nullptr) ssd_->AttachTracer(tracer, device_process);
  host_->AttachTracer(tracer, host_process);
  breaker_.AttachTracer(tracer, host_process);
  if (runtime_ != nullptr) runtime_->AttachTracer(tracer, host_process);
  if (tracer != nullptr) {
    executor_track_ = tracer->RegisterTrack(host_process, "executor");
  }
}

StageBreakdown Database::StageSnapshot() const {
  StageBreakdown s;
  if (ssd_ != nullptr) {
    s.flash_chip = ssd_->flash_array().total_chip_busy();
    s.flash_channel = ssd_->flash_array().total_channel_busy();
    s.dram_bus = ssd_->dma_busy();
    s.host_link = ssd_->host_link_busy();
    s.embedded_cpu = ssd_->embedded_cpu_busy();
  }
  s.host_cpu = host_->cpu_busy();
  return s;
}

Result<storage::TableInfo> Database::LoadTable(
    std::string name, const storage::Schema& schema,
    storage::PageLayout layout, std::uint64_t row_count,
    const storage::RowGenerator& gen, std::uint64_t reserve_extra_pages) {
  storage::TableLoader loader(device_.get(), catalog_.get());
  return loader.Load(std::move(name), schema, layout, row_count, gen,
                     reserve_extra_pages);
}

Status Database::BuildZoneMap(const std::string& table) {
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            catalog_->GetTable(table));
  std::vector<std::byte> buffer(device_->page_size());
  auto read_page = [&](std::uint64_t page_index)
      -> Result<std::span<const std::byte>> {
    SMARTSSD_RETURN_IF_ERROR(
        device_
            ->ReadPages(info->first_lpn + page_index, 1, buffer,
                        /*ready=*/0)
            .status());
    return std::span<const std::byte>(buffer);
  };
  SMARTSSD_ASSIGN_OR_RETURN(storage::ZoneMap map,
                            storage::ZoneMap::Build(*info, read_page));
  zone_maps_.insert_or_assign(table, std::move(map));
  return Status::OK();
}

const storage::ZoneMap* Database::zone_map(const std::string& table) const {
  auto it = zone_maps_.find(table);
  return it == zone_maps_.end() ? nullptr : &it->second;
}

void Database::DropZoneMap(const std::string& table) {
  zone_maps_.erase(table);
  stale_zone_maps_.erase(table);
}

void Database::MarkZoneMapStale(const std::string& table) {
  if (zone_maps_.erase(table) > 0) {
    stale_zone_maps_.insert(table);
  }
}

Status Database::WidenZoneMap(const std::string& table,
                              std::uint64_t page_index,
                              std::span<const std::byte> page) {
  auto it = zone_maps_.find(table);
  if (it == zone_maps_.end()) return Status::OK();
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            catalog_->GetTable(table));
  return it->second.WidenFromPage(*info, page_index, page);
}

Result<SimTime> Database::RestoreZoneMaps(SimTime ready) {
  SimTime t = ready;
  // std::set iteration gives a deterministic rebuild order. Tables that
  // still have dirty pool pages stay stale: rebuilding them now would
  // bake pre-flush device bytes into the statistics.
  for (auto it = stale_zone_maps_.begin(); it != stale_zone_maps_.end();) {
    const std::string& table = *it;
    SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                              catalog_->GetTable(table));
    if (pool_->HasDirtyInRange(info->first_lpn, info->reserved_pages)) {
      ++it;
      continue;
    }
    std::vector<std::byte> buffer(device_->page_size());
    auto read_page = [&](std::uint64_t page_index)
        -> Result<std::span<const std::byte>> {
      SMARTSSD_ASSIGN_OR_RETURN(
          t, device_->ReadPages(info->first_lpn + page_index, 1, buffer, t));
      return std::span<const std::byte>(buffer);
    };
    SMARTSSD_ASSIGN_OR_RETURN(storage::ZoneMap map,
                              storage::ZoneMap::Build(*info, read_page));
    zone_maps_.insert_or_assign(table, std::move(map));
    it = stale_zone_maps_.erase(it);
  }
  return t;
}

Result<SimTime> Database::FlushAll(SimTime ready) {
  SMARTSSD_ASSIGN_OR_RETURN(SimTime t, pool_->FlushAll(ready));
  return RestoreZoneMaps(t);
}

void Database::ResetForColdRun() {
  pool_->Clear();
  host_->ResetTiming();
  if (ssd_ != nullptr) {
    ssd_->ResetTiming();
  } else {
    static_cast<ssd::HddDevice*>(device_.get())->ResetTiming();
  }
}

std::uint64_t Database::EstimatedHostReadBytesPerSecond() const {
  if (options_.device == DeviceKind::kHdd) {
    // Media rate derated by per-request overhead at 32-page commands.
    const double request_bytes =
        32.0 * options_.hdd.page_size_bytes;
    const double transfer_s =
        request_bytes / static_cast<double>(
                            options_.hdd.media_bytes_per_second);
    const double total_s =
        transfer_s + ToSeconds(options_.hdd.per_request_overhead);
    return static_cast<std::uint64_t>(request_bytes / total_s);
  }
  return ssd::EffectiveBytesPerSecond(options_.ssd.host_interface.standard);
}

std::uint64_t Database::EstimatedInternalReadBytesPerSecond() const {
  if (ssd_ == nullptr) return 0;
  const auto& dram = options_.ssd.dram;
  const std::uint64_t dram_rate =
      static_cast<std::uint64_t>(dram.bus_count) * dram.bus_bytes_per_second;
  const std::uint64_t channel_rate =
      static_cast<std::uint64_t>(options_.ssd.geometry.channels) *
      options_.ssd.timings.channel_bytes_per_second;
  return std::min(dram_rate, channel_rate);
}

}  // namespace smartssd::engine
