#ifndef SMARTSSD_ENGINE_FALLBACK_REASON_H_
#define SMARTSSD_ENGINE_FALLBACK_REASON_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace smartssd::engine {

// The one place that interprets a failed pushdown's Status for every
// consumer — QueryStats::fallback_reason, the circuit breaker, and trace
// events — so the reason strings stay identical across layers.

// Device failures worth re-running on the host path. Everything else
// (kFailedPrecondition, kInvalidArgument, ...) is a semantic refusal or
// an engine bug and must reach the caller.
bool RetryableDeviceFailure(const Status& status);

// Human-readable reason recorded in QueryStats::fallback_reason:
// "CODE: message" (Status::ToString), e.g.
// "ABORTED: device reset mid-session (injected fault)".
std::string FallbackReasonString(const Status& status);

// Stable short token — just the status code name, e.g. "ABORTED" — for
// trace-event args and other machine consumers.
std::string_view FallbackReasonToken(const Status& status);

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_FALLBACK_REASON_H_
