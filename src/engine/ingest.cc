#include "engine/ingest.h"

namespace smartssd::engine {

IngestTask::IngestTask(Database* db, const IngestBatchSpec* spec,
                       SimTime start)
    : db_(db), spec_(spec), t_(start) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_CHECK(spec != nullptr);
}

StepOutcome IngestTask::FailWith(const Status& error) {
  final_result_ = error;
  state_ = State::kDone;
  return StepOutcome{.at = t_, .finished = true};
}

IngestTask::State IngestTask::AfterWrites() const {
  return spec_->flush ? State::kFlush : State::kRestore;
}

StepOutcome IngestTask::Step() {
  switch (state_) {
    case State::kStart: {
      if (spec_->with_update) {
        auto cursor = UpdateCursor::Open(db_, spec_->table,
                                         spec_->update_predicate,
                                         spec_->mutate);
        if (!cursor.ok()) return FailWith(cursor.status());
        update_.emplace(std::move(cursor).value());
        state_ = State::kUpdate;
      } else if (spec_->append_rows > 0) {
        auto cursor =
            AppendCursor::Open(db_, spec_->table, spec_->append_rows,
                               spec_->append_gen, spec_->widen_zone_map);
        if (!cursor.ok()) return FailWith(cursor.status());
        append_.emplace(std::move(cursor).value());
        state_ = State::kAppend;
      } else {
        state_ = AfterWrites();
      }
      return StepOutcome{.at = t_};
    }
    case State::kUpdate: {
      auto at = update_->StepPage(t_);
      if (!at.ok()) return FailWith(at.status());
      t_ = at.value();
      if (update_->done()) {
        stats_.rows_updated = update_->stats().rows_matched;
        stats_.pages_dirtied += update_->stats().pages_dirtied;
        if (spec_->append_rows > 0) {
          auto cursor =
              AppendCursor::Open(db_, spec_->table, spec_->append_rows,
                                 spec_->append_gen, spec_->widen_zone_map);
          if (!cursor.ok()) return FailWith(cursor.status());
          append_.emplace(std::move(cursor).value());
          state_ = State::kAppend;
        } else {
          state_ = AfterWrites();
        }
      }
      return StepOutcome{.at = t_};
    }
    case State::kAppend: {
      auto at = append_->StepPage(t_);
      if (!at.ok()) return FailWith(at.status());
      t_ = at.value();
      if (append_->done()) {
        stats_.rows_appended = append_->stats().rows_appended;
        stats_.pages_dirtied += append_->stats().pages_dirtied;
        state_ = AfterWrites();
      }
      return StepOutcome{.at = t_};
    }
    case State::kFlush: {
      auto info = db_->catalog().GetTable(spec_->table);
      if (!info.ok()) return FailWith(info.status());
      // Walk dirty pages in LPN order across the whole extent (the
      // reservation, so appended pages are covered too).
      const auto next = db_->buffer_pool().NextDirtyInRange(
          info.value()->first_lpn, info.value()->reserved_pages);
      if (!next.has_value()) {
        state_ = State::kRestore;
        return StepOutcome{.at = t_};
      }
      auto at = db_->buffer_pool().FlushPage(*next, t_);
      if (!at.ok()) return FailWith(at.status());
      t_ = at.value();
      ++stats_.pages_flushed;
      return StepOutcome{.at = t_};
    }
    case State::kRestore: {
      // No-op unless an update (or a widen_zone_map=false append)
      // marked the table's zone map stale. RestoreZoneMaps itself skips
      // tables with dirty pages still in the pool, so an unflushed
      // batch leaves its map stale rather than rebuilding from stale
      // device bytes.
      auto at = db_->RestoreZoneMaps(t_);
      if (!at.ok()) return FailWith(at.status());
      t_ = at.value();
      stats_.end = t_;
      state_ = State::kDone;
      return StepOutcome{.at = t_, .finished = true};
    }
    case State::kDone:
      return StepOutcome{.at = t_, .finished = true};
  }
  return StepOutcome{.at = t_, .finished = true};
}

Result<IngestStats> IngestTask::TakeResult() {
  SMARTSSD_CHECK(finished());
  if (final_result_.has_value()) {
    return *std::move(final_result_);
  }
  return stats_;
}

}  // namespace smartssd::engine
