#include "engine/update.h"

#include <vector>

#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::engine {

namespace {
// Host CPU cost of an update pass: decode + predicate + re-encode.
constexpr std::uint64_t kCyclesPerTuple = 60;
constexpr std::uint64_t kCyclesPerUpdatedTuple = 120;
}  // namespace

TableUpdater::TableUpdater(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

Result<TableUpdater::UpdateStats> TableUpdater::Update(
    const std::string& table, const expr::Expression* predicate,
    const std::function<void(const expr::RowView& row,
                             storage::TupleWriter& writer)>& mutate,
    SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            db_->catalog().GetTable(table));
  if (predicate != nullptr) {
    SMARTSSD_RETURN_IF_ERROR(predicate->Validate(info->schema));
  }
  const storage::Schema& schema = info->schema;
  const std::uint32_t page_size = db_->device().page_size();
  BufferPool& pool = db_->buffer_pool();

  UpdateStats stats;
  SimTime t = start;
  std::vector<std::byte> tuple(schema.tuple_size());
  std::vector<std::byte> new_page;
  expr::EvalStats eval;  // predicate work folded into the cycle charge

  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    const std::uint64_t lpn = info->first_lpn + p;
    SMARTSSD_ASSIGN_OR_RETURN(
        auto page_and_time,
        pool.GetPage(lpn, t, info->first_lpn + info->page_count));
    t = page_and_time.second;
    std::span<const std::byte> page = page_and_time.first;

    // Decode every tuple, apply the mutation to matches, re-encode.
    bool page_changed = false;
    std::uint64_t page_tuples = 0;
    storage::NsmPageBuilder nsm(&schema, page_size);
    storage::PaxPageBuilder pax(&schema, page_size);
    auto rewrite_tuple = [&](const expr::RowView& view,
                             const std::byte* raw_bytes_nsm) -> Status {
      ++page_tuples;
      // Serialize the current row.
      if (raw_bytes_nsm != nullptr) {
        std::copy_n(raw_bytes_nsm, schema.tuple_size(), tuple.begin());
      } else {
        storage::TupleWriter writer(&schema, tuple);
        for (int c = 0; c < schema.num_columns(); ++c) {
          switch (schema.column(c).type) {
            case storage::ColumnType::kInt32:
              writer.SetInt32(c, static_cast<std::int32_t>(
                                     view.GetColumn(c).AsInt()));
              break;
            case storage::ColumnType::kInt64:
              writer.SetInt64(c, view.GetColumn(c).AsInt());
              break;
            case storage::ColumnType::kFixedChar:
              writer.SetChar(c, view.GetColumn(c).AsString());
              break;
          }
        }
      }
      if (predicate == nullptr ||
          predicate->Evaluate(view, &eval).AsBool()) {
        storage::TupleWriter writer(&schema, tuple);
        mutate(view, writer);
        ++stats.rows_matched;
        page_changed = true;
      }
      const bool appended = info->layout == storage::PageLayout::kNsm
                                ? nsm.Append(tuple)
                                : pax.Append(tuple);
      if (!appended) {
        return InternalError("update: rebuilt page overflowed");
      }
      return Status::OK();
    };

    if (info->layout == storage::PageLayout::kNsm) {
      SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                                storage::NsmPageReader::Open(&schema, page));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        const std::byte* raw = reader.tuple(i);
        expr::NsmRowView view(&schema, raw);
        SMARTSSD_RETURN_IF_ERROR(rewrite_tuple(view, raw));
      }
    } else {
      SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                                storage::PaxPageReader::Open(&schema, page));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        expr::PaxRowView view(&schema, &reader, i);
        SMARTSSD_RETURN_IF_ERROR(rewrite_tuple(view, nullptr));
      }
    }

    const std::uint64_t cycles =
        page_tuples * kCyclesPerTuple +
        (page_changed ? page_tuples * kCyclesPerUpdatedTuple : 0);
    t = db_->host().Execute(cycles, t);

    if (page_changed) {
      const auto image = info->layout == storage::PageLayout::kNsm
                             ? nsm.image()
                             : pax.image();
      SMARTSSD_ASSIGN_OR_RETURN(t, pool.WritePage(lpn, image, t));
      ++stats.pages_dirtied;
    }
  }

  if (stats.rows_matched > 0) {
    // Stored statistics may no longer bound the data.
    db_->DropZoneMap(table);
  }
  stats.end = t;
  return stats;
}

}  // namespace smartssd::engine
