#include "engine/update.h"

#include <vector>

#include "storage/nsm_page.h"
#include "storage/pax_page.h"

namespace smartssd::engine {

namespace {
// Host CPU cost of an update pass: decode + predicate + re-encode.
constexpr std::uint64_t kCyclesPerTuple = 60;
constexpr std::uint64_t kCyclesPerUpdatedTuple = 120;

// Serializes the row a RowView exposes into `tuple`.
void SerializeRow(const storage::Schema& schema, const expr::RowView& view,
                  std::span<std::byte> tuple) {
  storage::TupleWriter writer(&schema, tuple);
  for (int c = 0; c < schema.num_columns(); ++c) {
    switch (schema.column(c).type) {
      case storage::ColumnType::kInt32:
        writer.SetInt32(c,
                        static_cast<std::int32_t>(view.GetColumn(c).AsInt()));
        break;
      case storage::ColumnType::kInt64:
        writer.SetInt64(c, view.GetColumn(c).AsInt());
        break;
      case storage::ColumnType::kFixedChar:
        writer.SetChar(c, view.GetColumn(c).AsString());
        break;
    }
  }
}
}  // namespace

TableUpdater::TableUpdater(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

Result<TableUpdater::UpdateStats> TableUpdater::Update(
    const std::string& table, const expr::Expression* predicate,
    const MutateFn& mutate, SimTime start) {
  SMARTSSD_ASSIGN_OR_RETURN(UpdateCursor cursor,
                            UpdateCursor::Open(db_, table, predicate, mutate));
  SimTime t = start;
  while (!cursor.done()) {
    SMARTSSD_ASSIGN_OR_RETURN(t, cursor.StepPage(t));
  }
  return cursor.stats();
}

Result<UpdateCursor> UpdateCursor::Open(Database* db, std::string table,
                                        const expr::Expression* predicate,
                                        TableUpdater::MutateFn mutate) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            db->catalog().GetTable(table));
  if (predicate != nullptr) {
    SMARTSSD_RETURN_IF_ERROR(predicate->Validate(info->schema));
  }
  UpdateCursor cursor;
  cursor.db_ = db;
  cursor.table_ = std::move(table);
  cursor.predicate_ = predicate;
  cursor.mutate_ = std::move(mutate);
  cursor.page_count_ = info->page_count;
  return cursor;
}

Result<SimTime> UpdateCursor::StepPage(SimTime ready) {
  if (done()) return ready;
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            db_->catalog().GetTable(table_));
  const storage::Schema& schema = info->schema;
  const std::uint32_t page_size = db_->device().page_size();
  BufferPool& pool = db_->buffer_pool();

  const std::uint64_t p = next_page_++;
  const std::uint64_t lpn = info->first_lpn + p;
  SimTime t = ready;
  SMARTSSD_ASSIGN_OR_RETURN(
      auto page_and_time,
      pool.GetPage(lpn, t, info->first_lpn + info->page_count));
  t = page_and_time.second;
  std::span<const std::byte> page = page_and_time.first;

  // Decode every tuple, apply the mutation to matches, re-encode.
  bool page_changed = false;
  std::uint64_t page_tuples = 0;
  std::vector<std::byte> tuple(schema.tuple_size());
  storage::NsmPageBuilder nsm(&schema, page_size);
  storage::PaxPageBuilder pax(&schema, page_size);
  expr::EvalStats eval;  // predicate work folded into the cycle charge
  auto rewrite_tuple = [&](const expr::RowView& view,
                           const std::byte* raw_bytes_nsm) -> Status {
    ++page_tuples;
    // Serialize the current row.
    if (raw_bytes_nsm != nullptr) {
      std::copy_n(raw_bytes_nsm, schema.tuple_size(), tuple.begin());
    } else {
      SerializeRow(schema, view, tuple);
    }
    if (predicate_ == nullptr ||
        predicate_->Evaluate(view, &eval).AsBool()) {
      storage::TupleWriter writer(&schema, tuple);
      mutate_(view, writer);
      ++stats_.rows_matched;
      page_changed = true;
    }
    const bool appended = info->layout == storage::PageLayout::kNsm
                              ? nsm.Append(tuple)
                              : pax.Append(tuple);
    if (!appended) {
      return InternalError("update: rebuilt page overflowed");
    }
    return Status::OK();
  };

  if (info->layout == storage::PageLayout::kNsm) {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                              storage::NsmPageReader::Open(&schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      const std::byte* raw = reader.tuple(i);
      expr::NsmRowView view(&schema, raw);
      SMARTSSD_RETURN_IF_ERROR(rewrite_tuple(view, raw));
    }
  } else {
    SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                              storage::PaxPageReader::Open(&schema, page));
    for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
      expr::PaxRowView view(&schema, &reader, i);
      SMARTSSD_RETURN_IF_ERROR(rewrite_tuple(view, nullptr));
    }
  }

  const std::uint64_t cycles =
      page_tuples * kCyclesPerTuple +
      (page_changed ? page_tuples * kCyclesPerUpdatedTuple : 0);
  t = db_->host().Execute(cycles, t);

  if (page_changed) {
    const auto image = info->layout == storage::PageLayout::kNsm
                           ? nsm.image()
                           : pax.image();
    SMARTSSD_ASSIGN_OR_RETURN(t, pool.WritePage(lpn, image, t));
    ++stats_.pages_dirtied;
  }

  if (done() && stats_.rows_matched > 0) {
    // Stored statistics may no longer bound the data; FlushAll rebuilds.
    db_->MarkZoneMapStale(table_);
  }
  stats_.end = t;
  return t;
}

TableAppender::TableAppender(Database* db) : db_(db) {
  SMARTSSD_CHECK(db != nullptr);
}

Result<TableAppender::AppendStats> TableAppender::Append(
    const std::string& table, std::uint64_t row_count,
    const storage::RowGenerator& gen, SimTime start, bool widen_zone_map) {
  SMARTSSD_ASSIGN_OR_RETURN(
      AppendCursor cursor,
      AppendCursor::Open(db_, table, row_count, gen, widen_zone_map));
  SimTime t = start;
  while (!cursor.done()) {
    SMARTSSD_ASSIGN_OR_RETURN(t, cursor.StepPage(t));
  }
  return cursor.stats();
}

Result<AppendCursor> AppendCursor::Open(Database* db, std::string table,
                                        std::uint64_t row_count,
                                        storage::RowGenerator gen,
                                        bool widen_zone_map) {
  SMARTSSD_CHECK(db != nullptr);
  SMARTSSD_RETURN_IF_ERROR(db->catalog().GetTable(table).status());
  AppendCursor cursor;
  cursor.db_ = db;
  cursor.table_ = std::move(table);
  cursor.gen_ = std::move(gen);
  cursor.target_rows_ = row_count;
  cursor.widen_zone_map_ = widen_zone_map;
  return cursor;
}

Result<SimTime> AppendCursor::StepPage(SimTime ready) {
  if (done()) return ready;
  SMARTSSD_ASSIGN_OR_RETURN(storage::TableInfo* info,
                            db_->catalog().GetMutableTable(table_));
  const storage::Schema& schema = info->schema;
  const std::uint32_t capacity = info->tuples_per_page;
  const std::uint32_t page_size = db_->device().page_size();
  BufferPool& pool = db_->buffer_pool();
  SimTime t = ready;

  // Decide which page this step fills: the partial last page (rebuilt
  // in place) or a fresh page carved from the reserved extent.
  const std::uint64_t full_slots =
      info->page_count * static_cast<std::uint64_t>(capacity);
  std::uint64_t page_index;
  bool rebuild_last = false;
  bool new_page = false;
  if (info->tuple_count == 0) {
    page_index = 0;  // the loader's minimum one-page extent, still empty
  } else if (info->tuple_count < full_slots) {
    rebuild_last = true;
    page_index = info->page_count - 1;
  } else {
    if (info->page_count >= info->reserved_pages) {
      return FailedPreconditionError(
          "append: reserved extent exhausted for table " + table_);
    }
    new_page = true;
    page_index = info->page_count;
  }
  const std::uint64_t lpn = info->first_lpn + page_index;

  storage::NsmPageBuilder nsm(&schema, page_size);
  storage::PaxPageBuilder pax(&schema, page_size);
  std::vector<std::byte> tuple(schema.tuple_size());
  auto append_serialized = [&]() -> Status {
    const bool ok = info->layout == storage::PageLayout::kNsm
                        ? nsm.Append(tuple)
                        : pax.Append(tuple);
    if (!ok) return InternalError("append: page overflowed its capacity");
    return Status::OK();
  };

  // Re-encode the partial page's existing rows.
  std::uint64_t existing = 0;
  if (rebuild_last) {
    SMARTSSD_ASSIGN_OR_RETURN(
        auto page_and_time,
        pool.GetPage(lpn, t, info->first_lpn + info->page_count));
    t = page_and_time.second;
    std::span<const std::byte> page = page_and_time.first;
    if (info->layout == storage::PageLayout::kNsm) {
      SMARTSSD_ASSIGN_OR_RETURN(const storage::NsmPageReader reader,
                                storage::NsmPageReader::Open(&schema, page));
      existing = reader.tuple_count();
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        std::copy_n(reader.tuple(i), schema.tuple_size(), tuple.begin());
        SMARTSSD_RETURN_IF_ERROR(append_serialized());
      }
    } else {
      SMARTSSD_ASSIGN_OR_RETURN(const storage::PaxPageReader reader,
                                storage::PaxPageReader::Open(&schema, page));
      existing = reader.tuple_count();
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i) {
        expr::PaxRowView view(&schema, &reader, i);
        SerializeRow(schema, view, tuple);
        SMARTSSD_RETURN_IF_ERROR(append_serialized());
      }
    }
  }

  // Append new rows until the page is full or the batch is done. `gen_`
  // sees the global row index, so whole-table generators stay pure.
  std::uint64_t new_rows = 0;
  while (existing + new_rows < capacity && !done()) {
    storage::TupleWriter writer(&schema, tuple);
    gen_(info->tuple_count + new_rows, writer);
    SMARTSSD_RETURN_IF_ERROR(append_serialized());
    ++new_rows;
    ++stats_.rows_appended;
  }
  SMARTSSD_CHECK_GT(new_rows, 0ULL);

  const std::uint64_t cycles = existing * kCyclesPerTuple +
                               new_rows * kCyclesPerUpdatedTuple;
  t = db_->host().Execute(cycles, t);

  const auto image = info->layout == storage::PageLayout::kNsm
                         ? nsm.image()
                         : pax.image();
  SMARTSSD_ASSIGN_OR_RETURN(t, pool.WritePage(lpn, image, t));
  ++stats_.pages_dirtied;
  info->tuple_count += new_rows;
  if (new_page) ++info->page_count;

  if (widen_zone_map_) {
    SMARTSSD_RETURN_IF_ERROR(db_->WidenZoneMap(table_, page_index, image));
  } else {
    db_->MarkZoneMapStale(table_);
  }
  stats_.end = t;
  return t;
}

}  // namespace smartssd::engine
