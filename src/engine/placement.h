#ifndef SMARTSSD_ENGINE_PLACEMENT_H_
#define SMARTSSD_ENGINE_PLACEMENT_H_

// Placement: where a query's scan runs. The historical decision — host
// or device, chosen once by the pushdown planner's cost model — is one
// policy here (kCostModel, the default). The others either pin a side
// (kStaticHost / kStaticDevice), always split eligible scans by the
// cost model's host/device ratio (kSplit), or consult live scheduler
// signals to route each query and split under backlog (kAdaptive).
//
// A split scan becomes an ordered list of ScanFragments — contiguous
// page ranges of the outer table, each independently placeable — whose
// partial results merge in fixed fragment order through
// engine/partial_merge. Every signal a policy reads lives on the
// virtual clock (grant pool occupancy, breaker state, admission-queue
// histograms), so a fixed arrival trace yields byte-identical routing
// decisions and results run-to-run.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/database.h"
#include "engine/metrics.h"
#include "engine/planner.h"
#include "exec/query_spec.h"

namespace smartssd::engine {

// One placeable unit of a scan: pages [first_page, first_page +
// page_count) of the outer table, routed to one side. Fragment order is
// page order; the merge consumes partials in that order.
struct ScanFragment {
  std::uint64_t first_page = 0;
  std::uint64_t page_count = 0;
  ExecutionTarget target = ExecutionTarget::kHost;
};

// Live load signals a policy may consult, all deterministic on the
// virtual clock. A scheduler exposes them through SignalSource; solo
// (blocking) execution passes none and the defaults mean "idle".
struct LiveSignals {
  std::uint64_t in_flight = 0;        // queries admitted, not yet done
  std::uint64_t queue_depth = 0;      // arrivals waiting for admission
  std::uint64_t queue_wait_count = 0;  // completed-query queue waits seen
  double queue_wait_p95_ns = 0;
};

class SignalSource {
 public:
  virtual ~SignalSource() = default;
  virtual LiveSignals Signals() const = 0;
};

struct PlacementDecision {
  ExecutionTarget target = ExecutionTarget::kHost;
  // When set, run the scan as `fragments` (ordered by page range) and
  // merge partials; `target` then summarizes as kSmartSsd when any
  // fragment goes to the device.
  bool split = false;
  std::vector<ScanFragment> fragments;
  std::string reason;
};

// True when the query's scan can run as independently placed fragments
// with exact OpCounts reassembly: no join (the hybrid join does real
// finish-time work per fragment), no top-N (its finish emission charge
// depends on per-fragment heap contents), at least two outer pages, and
// scatter-gather-mergeable. Ineligible queries fall back to whole-query
// routing, so every spec shape stays executable under every policy.
bool SplittableScan(const exec::BoundQuery& bound);

// Applies `policy` to one query at virtual time `now`. `signals` may be
// null (blocking executors). Policies that may touch the device check
// hard eligibility (smart runtime, dirty pages, join DRAM fit) and the
// circuit breaker up front, so a known-bad device is excluded before
// dispatch rather than discovered via fallback.
Result<PlacementDecision> DecidePlacement(Database* db,
                                          const exec::BoundQuery& bound,
                                          const PlanHints& hints,
                                          PlacementPolicyKind policy,
                                          SimTime now,
                                          const SignalSource* signals);

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_PLACEMENT_H_
