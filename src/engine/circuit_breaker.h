#ifndef SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_
#define SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"
#include "obs/trace.h"

namespace smartssd::engine {

struct CircuitBreakerConfig {
  // Consecutive pushdown failures before the breaker opens and the
  // planner routes around the device.
  std::uint32_t failure_threshold = 3;
  // How long (virtual time) an open breaker keeps the device out of the
  // plan space before the next query is allowed to probe it again.
  SimDuration cooldown = 500 * kMillisecond;
};

// Per-device circuit breaker over the pushdown path. A device that keeps
// failing sessions (resets, stalls, transfer errors) wastes the whole
// failed-session latency on every query before the fallback kicks in;
// after `failure_threshold` consecutive failures the breaker opens and
// the planner sends queries straight to the host path. Once `cooldown`
// virtual time has passed, the breaker lets the next pushdown through as
// a probe (half-open): success closes it, another failure re-opens it
// for a further cooldown.
class DeviceCircuitBreaker {
 public:
  DeviceCircuitBreaker() = default;
  explicit DeviceCircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {}

  // `reason` is the stable failure token (see FallbackReasonToken);
  // it is kept for introspection and attached to the trace instants.
  void RecordFailure(SimTime now, std::string_view reason = {}) {
    ++total_failures_;
    ++consecutive_failures_;
    last_failure_reason_ = std::string(reason);
    if (tracer_ != nullptr) {
      tracer_->Instant(track_, "pushdown failure", "breaker", now,
                       {obs::Arg::Str("reason", reason),
                        obs::Arg::Uint("consecutive",
                                       consecutive_failures_)});
    }
    if (consecutive_failures_ >= config_.failure_threshold || open_) {
      if (!open_) ++trips_;
      open_ = true;
      retry_after_ = now + config_.cooldown;
      if (tracer_ != nullptr) {
        tracer_->Instant(track_, "breaker open", "breaker", now,
                         {obs::Arg::Uint("retry_after", retry_after_)});
      }
    }
  }

  void RecordSuccess(SimTime now = 0) {
    if (tracer_ != nullptr && open_) {
      tracer_->Instant(track_, "breaker close", "breaker", now);
    }
    consecutive_failures_ = 0;
    open_ = false;
  }

  // Records state transitions as instants on a "breaker" lane under
  // `process`. nullptr detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      track_ = tracer_->RegisterTrack(process, "breaker");
    }
  }

  // True while the planner should route around the device. Past
  // `retry_after_` this returns false even though the breaker is still
  // open — that lets exactly the next pushdown probe the device; its
  // RecordFailure re-opens for another cooldown, its RecordSuccess
  // closes for good.
  bool ShouldBypass(SimTime now) const {
    return open_ && now < retry_after_;
  }

  bool open() const { return open_; }
  std::uint32_t consecutive_failures() const {
    return consecutive_failures_;
  }
  std::uint64_t total_failures() const { return total_failures_; }
  std::uint64_t trips() const { return trips_; }
  const std::string& last_failure_reason() const {
    return last_failure_reason_;
  }

  void Reset() {
    open_ = false;
    consecutive_failures_ = 0;
    retry_after_ = 0;
  }

 private:
  CircuitBreakerConfig config_;
  bool open_ = false;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t trips_ = 0;
  SimTime retry_after_ = 0;
  std::string last_failure_reason_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_
