#ifndef SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_
#define SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/units.h"
#include "obs/trace.h"

namespace smartssd::engine {

struct CircuitBreakerConfig {
  // Consecutive pushdown failures before the breaker opens and the
  // planner routes around the device.
  std::uint32_t failure_threshold = 3;
  // How long (virtual time) an open breaker keeps the device out of the
  // plan space before the next query is allowed to probe it again.
  SimDuration cooldown = 500 * kMillisecond;
};

// Per-device circuit breaker over the pushdown path. A device that keeps
// failing sessions (resets, stalls, transfer errors) wastes the whole
// failed-session latency on every query before the fallback kicks in;
// after `failure_threshold` consecutive failures the breaker opens and
// the planner sends queries straight to the host path. Once `cooldown`
// virtual time has passed, the breaker goes half-open and admits exactly
// one pushdown as a probe — co-running queries keep bypassing while the
// probe is in flight, so a dead device eats one failed session per
// cooldown, not one per concurrent query. The probe's success closes the
// breaker; its failure re-opens it for a further cooldown.
class DeviceCircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  DeviceCircuitBreaker() = default;
  explicit DeviceCircuitBreaker(const CircuitBreakerConfig& config)
      : config_(config) {}

  // `reason` is the stable failure token (see FallbackReasonToken);
  // it is kept for introspection and attached to the trace instants.
  void RecordFailure(SimTime now, std::string_view reason = {}) {
    ++total_failures_;
    ++consecutive_failures_;
    last_failure_reason_ = std::string(reason);
    if (tracer_ != nullptr) {
      tracer_->Instant(track_, "pushdown failure", "breaker", now,
                       {obs::Arg::Str("reason", reason),
                        obs::Arg::Uint("consecutive",
                                       consecutive_failures_)});
    }
    if (state_ != State::kClosed ||
        consecutive_failures_ >= config_.failure_threshold) {
      // A failed half-open probe re-opens the same outage, so only a
      // closed->open transition counts as a new trip.
      if (state_ == State::kClosed) ++trips_;
      state_ = State::kOpen;
      probe_in_flight_ = false;
      retry_after_ = now + config_.cooldown;
      if (tracer_ != nullptr) {
        tracer_->Instant(track_, "breaker open", "breaker", now,
                         {obs::Arg::Uint("retry_after", retry_after_)});
      }
    }
  }

  void RecordSuccess(SimTime now) {
    if (tracer_ != nullptr && state_ != State::kClosed) {
      tracer_->Instant(track_, "breaker close", "breaker", now);
    }
    consecutive_failures_ = 0;
    state_ = State::kClosed;
    probe_in_flight_ = false;
  }

  // Records state transitions as instants on a "breaker" lane under
  // `process`. nullptr detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process) {
    tracer_ = tracer;
    if (tracer_ != nullptr) {
      track_ = tracer_->RegisterTrack(process, "breaker");
    }
  }

  // True while the caller should route around the device. Once the
  // cooldown has elapsed this admits exactly ONE caller (returning
  // false) as the half-open probe; every other caller keeps bypassing
  // until that probe's RecordSuccess/RecordFailure lands. If a probe
  // never reports back within a further cooldown (e.g. its query died
  // of a non-device error), the next caller is admitted in its place.
  bool ShouldBypass(SimTime now) {
    switch (state_) {
      case State::kClosed:
        return false;
      case State::kOpen:
        if (now < retry_after_) return true;
        AdmitProbe(now);
        return false;
      case State::kHalfOpen:
        if (probe_in_flight_ && now < probe_deadline_) return true;
        AdmitProbe(now);
        return false;
    }
    return false;
  }

  bool open() const { return state_ != State::kClosed; }
  State state() const { return state_; }
  bool probe_in_flight() const { return probe_in_flight_; }
  std::uint32_t consecutive_failures() const {
    return consecutive_failures_;
  }
  std::uint64_t total_failures() const { return total_failures_; }
  std::uint64_t trips() const { return trips_; }
  const std::string& last_failure_reason() const {
    return last_failure_reason_;
  }
  const CircuitBreakerConfig& config() const { return config_; }

  void Reset() {
    state_ = State::kClosed;
    probe_in_flight_ = false;
    consecutive_failures_ = 0;
    retry_after_ = 0;
    probe_deadline_ = 0;
  }

 private:
  void AdmitProbe(SimTime now) {
    const bool was_open = state_ == State::kOpen;
    state_ = State::kHalfOpen;
    probe_in_flight_ = true;
    probe_deadline_ = now + config_.cooldown;
    if (tracer_ != nullptr && was_open) {
      tracer_->Instant(track_, "breaker half-open", "breaker", now);
    }
  }

  CircuitBreakerConfig config_;
  State state_ = State::kClosed;
  bool probe_in_flight_ = false;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t trips_ = 0;
  SimTime retry_after_ = 0;
  SimTime probe_deadline_ = 0;
  std::string last_failure_reason_;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

inline const char* BreakerStateName(DeviceCircuitBreaker::State state) {
  switch (state) {
    case DeviceCircuitBreaker::State::kClosed:
      return "closed";
    case DeviceCircuitBreaker::State::kOpen:
      return "open";
    case DeviceCircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace smartssd::engine

#endif  // SMARTSSD_ENGINE_CIRCUIT_BREAKER_H_
