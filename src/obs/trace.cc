#include "obs/trace.h"

#include <algorithm>

namespace smartssd::obs {

Arg Arg::Int(std::string_view key, std::int64_t value) {
  Arg arg;
  arg.key = std::string(key);
  arg.kind = Kind::kInt;
  arg.i = value;
  return arg;
}

Arg Arg::Uint(std::string_view key, std::uint64_t value) {
  Arg arg;
  arg.key = std::string(key);
  arg.kind = Kind::kUint;
  arg.u = value;
  return arg;
}

Arg Arg::Double(std::string_view key, double value) {
  Arg arg;
  arg.key = std::string(key);
  arg.kind = Kind::kDouble;
  arg.d = value;
  return arg;
}

Arg Arg::Str(std::string_view key, std::string_view value) {
  Arg arg;
  arg.key = std::string(key);
  arg.kind = Kind::kString;
  arg.s = std::string(value);
  return arg;
}

TrackId Tracer::RegisterTrack(std::string_view process,
                              std::string_view thread) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process && tracks_[i].thread == thread) {
      return static_cast<TrackId>(i);
    }
  }
  Track track;
  track.process = std::string(process);
  track.thread = std::string(thread);
  std::uint32_t pid = 0;
  bool found = false;
  std::uint32_t next_pid = 0;
  std::uint32_t tid = 0;
  for (const Track& t : tracks_) {
    next_pid = std::max(next_pid, t.pid + 1);
    if (t.process == process) {
      found = true;
      pid = t.pid;
      tid = std::max(tid, t.tid + 1);
    }
  }
  track.pid = found ? pid : next_pid;
  track.tid = tid;
  tracks_.push_back(std::move(track));
  return static_cast<TrackId>(tracks_.size() - 1);
}

SpanId Tracer::Complete(TrackId track, std::string_view name,
                        std::string_view category, SimTime start,
                        SimTime end, std::vector<Arg> args) {
  SMARTSSD_CHECK_LT(track, tracks_.size());
  SMARTSSD_CHECK_LE(start, end);
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.track = track;
  event.id = next_span_id_++;
  event.parent = current_scope();
  event.name = std::string(name);
  event.category = std::string(category);
  event.start = start;
  event.end = end;
  event.args = std::move(args);
  Observe(end);
  events_.push_back(std::move(event));
  return events_.back().id;
}

SpanId Tracer::Begin(TrackId track, std::string_view name,
                     std::string_view category, SimTime start,
                     std::vector<Arg> args) {
  SMARTSSD_CHECK_LT(track, tracks_.size());
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.track = track;
  event.id = next_span_id_++;
  event.parent = current_scope();
  event.name = std::string(name);
  event.category = std::string(category);
  event.start = start;
  event.end = TraceEvent::kOpen;
  event.args = std::move(args);
  Observe(start);
  events_.push_back(std::move(event));
  ++open_spans_;
  return events_.back().id;
}

void Tracer::End(SpanId id, SimTime end, std::vector<Arg> args) {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->phase == TraceEvent::Phase::kSpan && it->id == id) {
      SMARTSSD_CHECK(it->open());  // double-End is a programmer error
      it->end = std::max(it->start, end);
      for (Arg& arg : args) it->args.push_back(std::move(arg));
      Observe(it->end);
      SMARTSSD_CHECK_GT(open_spans_, 0u);
      --open_spans_;
      return;
    }
  }
  SMARTSSD_CHECK(false);  // ending a span that was never begun
}

void Tracer::Instant(TrackId track, std::string_view name,
                     std::string_view category, SimTime at,
                     std::vector<Arg> args) {
  SMARTSSD_CHECK_LT(track, tracks_.size());
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.track = track;
  event.parent = current_scope();
  event.name = std::string(name);
  event.category = std::string(category);
  event.start = at;
  event.end = at;
  event.args = std::move(args);
  Observe(at);
  events_.push_back(std::move(event));
}

SimDuration Tracer::TrackBusy(TrackId track) const {
  SimDuration total = 0;
  for (const TraceEvent& event : events_) {
    if (event.track == track && event.phase == TraceEvent::Phase::kSpan &&
        !event.open()) {
      total += event.duration();
    }
  }
  return total;
}

void Tracer::Clear() {
  events_.clear();
  scopes_.clear();
  open_spans_ = 0;
  next_span_id_ = 1;
  latest_time_ = 0;
}

ScopedSpan::ScopedSpan(Tracer* tracer, TrackId track, std::string_view name,
                       std::string_view category, SimTime start,
                       std::vector<Arg> args)
    : tracer_(tracer), start_(start) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->Begin(track, name, category, start, std::move(args));
  tracer_->PushScope(id_);
  ended_ = false;
}

void ScopedSpan::End(SimTime end, std::vector<Arg> args) {
  if (tracer_ == nullptr || ended_) return;
  tracer_->PopScope();
  tracer_->End(id_, end, std::move(args));
  ended_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr || ended_) return;
  // Error-path close: the best known end time is the tracer's high-water
  // mark (some resource recorded work at or past the failure point).
  End(std::max(start_, tracer_->latest_time()));
}

}  // namespace smartssd::obs
