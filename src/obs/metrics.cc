#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cmath>

namespace smartssd::obs {
namespace {

// Bucket i covers [LowerBound(i), LowerBound(i + 1)).
std::uint64_t BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket == 1) return 1;
  return 1ull << (bucket - 1);
}

int BucketFor(std::uint64_t value) { return std::bit_width(value); }

void AtomicMin(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// Percentiles are virtual-time quantities; print them as integral
// nanoseconds (they are derived from uint64 inputs) so exports stay
// byte-deterministic across libm variations.
void AppendJsonQuantile(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64,
                static_cast<std::uint64_t>(std::llround(v)));
  out += buf;
}

}  // namespace

void Histogram::Record(std::uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

std::uint64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 1.0) return static_cast<double>(max());
  // Rank of the requested quantile, 1-based, nearest-rank style.
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate within [lo, hi) by the fraction of the bucket's
      // population below the rank, then clamp to the observed range so a
      // histogram of identical values is exact.
      const double lo = static_cast<double>(BucketLowerBound(b));
      const double hi = static_cast<double>(BucketLowerBound(b + 1));
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) /
          static_cast<double>(in_bucket);
      double v = lo + (hi - lo) * frac;
      v = std::max(v, static_cast<double>(min()));
      v = std::min(v, static_cast<double>(max()));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::int64_t MetricsRegistry::GaugeValue(std::string_view name,
                                         std::int64_t fallback) const {
  const Gauge* g = FindGauge(name);
  return g == nullptr ? fallback : g->value();
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

HistogramSnapshot MetricsRegistry::SnapshotHistogram(
    std::string_view name) const {
  HistogramSnapshot snap;
  const Histogram* h = FindHistogram(name);
  if (h == nullptr || h->count() == 0) return snap;
  snap.count = h->count();
  snap.sum = h->sum();
  snap.min = h->min();
  snap.max = h->max();
  snap.p50 = h->p50();
  snap.p95 = h->p95();
  snap.p99 = h->p99();
  return snap;
}

void MetricsRegistry::PrintText(std::FILE* out) const {
  for (const auto& [name, c] : counters_) {
    std::fprintf(out, "counter %s %" PRIu64 "\n", name.c_str(), c->value());
  }
  for (const auto& [name, g] : gauges_) {
    std::fprintf(out, "gauge %s %" PRId64 "\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    std::fprintf(out,
                 "histogram %s count=%" PRIu64 " sum=%" PRIu64
                 " min=%" PRIu64 " max=%" PRIu64 " p50=%" PRIu64
                 " p95=%" PRIu64 " p99=%" PRIu64 "\n",
                 name.c_str(), h->count(), h->sum(), h->min(), h->max(),
                 static_cast<std::uint64_t>(std::llround(h->p50())),
                 static_cast<std::uint64_t>(std::llround(h->p95())),
                 static_cast<std::uint64_t>(std::llround(h->p99())));
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[32];
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRId64, g->value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  char hbuf[160];
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(hbuf, sizeof(hbuf),
                  ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                  ",\"min\":%" PRIu64 ",\"max\":%" PRIu64,
                  h->count(), h->sum(), h->min(), h->max());
    out += hbuf;
    out += ",\"p50\":";
    AppendJsonQuantile(out, h->p50());
    out += ",\"p95\":";
    AppendJsonQuantile(out, h->p95());
    out += ",\"p99\":";
    AppendJsonQuantile(out, h->p99());
    out.push_back('}');
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace smartssd::obs
