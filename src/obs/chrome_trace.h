#ifndef SMARTSSD_OBS_CHROME_TRACE_H_
#define SMARTSSD_OBS_CHROME_TRACE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/trace.h"

namespace smartssd::obs {

// Serializes a Tracer's tracks and events as Chrome trace_event JSON
// ({"traceEvents": [...], "displayTimeUnit": "ns"}), loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each Track becomes a
// (pid, tid) lane named by process_name / thread_name metadata events;
// spans become "X" complete events, instants become "i" events, and
// virtual nanoseconds map to the format's microsecond field with
// fractional digits (integer math, so output is byte-deterministic for
// a given event set). Open spans are exported as zero-length markers at
// their start time rather than dropped.
std::string ExportChromeTrace(const Tracer& tracer);

// ExportChromeTrace + write to `path`.
Status WriteChromeTrace(const Tracer& tracer, std::string_view path);

}  // namespace smartssd::obs

#endif  // SMARTSSD_OBS_CHROME_TRACE_H_
