#include "obs/chrome_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <numeric>
#include <vector>

namespace smartssd::obs {
namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// trace_event timestamps are microseconds; keep nanosecond precision as
// three fractional digits, via integer math only (byte-deterministic).
void AppendMicros(std::string& out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

void AppendArgs(std::string& out, const std::vector<Arg>& args) {
  out += "\"args\":{";
  char buf[40];
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out.push_back(',');
    const Arg& arg = args[i];
    AppendJsonString(out, arg.key);
    out.push_back(':');
    switch (arg.kind) {
      case Arg::Kind::kInt:
        std::snprintf(buf, sizeof(buf), "%" PRId64, arg.i);
        out += buf;
        break;
      case Arg::Kind::kUint:
        std::snprintf(buf, sizeof(buf), "%" PRIu64, arg.u);
        out += buf;
        break;
      case Arg::Kind::kDouble:
        std::snprintf(buf, sizeof(buf), "%.17g", arg.d);
        out += buf;
        break;
      case Arg::Kind::kString:
        AppendJsonString(out, arg.s);
        break;
    }
  }
  out.push_back('}');
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  const std::vector<Track>& tracks = tracer.tracks();
  const std::vector<TraceEvent>& events = tracer.events();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('\n');
  };

  // Metadata: name each process once (first track wins) and each lane.
  std::vector<std::size_t> order(tracks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tracks[a].pid != tracks[b].pid) return tracks[a].pid < tracks[b].pid;
    return tracks[a].tid < tracks[b].tid;
  });
  std::uint32_t last_pid = ~0u;
  for (std::size_t idx : order) {
    const Track& track = tracks[idx];
    if (track.pid != last_pid) {
      last_pid = track.pid;
      comma();
      out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
      std::snprintf(buf, sizeof(buf), "%u,\"tid\":0,", track.pid);
      out += buf;
      out += "\"args\":{\"name\":";
      AppendJsonString(out, track.process);
      out += "}}";
    }
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":";
    std::snprintf(buf, sizeof(buf), "%u,\"tid\":%u,", track.pid, track.tid);
    out += buf;
    out += "\"args\":{\"name\":";
    AppendJsonString(out, track.thread);
    out += "}}";
  }

  // Events, in deterministic lane-then-time order.
  std::vector<std::size_t> ev(events.size());
  std::iota(ev.begin(), ev.end(), 0);
  std::sort(ev.begin(), ev.end(), [&](std::size_t a, std::size_t b) {
    const TraceEvent& ea = events[a];
    const TraceEvent& eb = events[b];
    const Track& ta = tracks[ea.track];
    const Track& tb = tracks[eb.track];
    if (ta.pid != tb.pid) return ta.pid < tb.pid;
    if (ta.tid != tb.tid) return ta.tid < tb.tid;
    if (ea.start != eb.start) return ea.start < eb.start;
    // Longer span first so enclosing spans precede their children.
    const SimDuration da = ea.open() ? 0 : ea.duration();
    const SimDuration db = eb.open() ? 0 : eb.duration();
    if (da != db) return da > db;
    return a < b;
  });
  for (std::size_t idx : ev) {
    const TraceEvent& event = events[idx];
    const Track& track = tracks[event.track];
    comma();
    out += "{\"ph\":";
    out += event.phase == TraceEvent::Phase::kSpan ? "\"X\"" : "\"i\"";
    out += ",\"name\":";
    AppendJsonString(out, event.name);
    out += ",\"cat\":";
    AppendJsonString(out, event.category.empty() ? std::string_view("sim")
                                                 : event.category);
    std::snprintf(buf, sizeof(buf), ",\"pid\":%u,\"tid\":%u,\"ts\":",
                  track.pid, track.tid);
    out += buf;
    AppendMicros(out, event.start);
    if (event.phase == TraceEvent::Phase::kSpan) {
      out += ",\"dur\":";
      AppendMicros(out, event.open() ? 0 : event.duration());
    } else {
      out += ",\"s\":\"t\"";
    }
    if (event.id != kNoSpan || event.parent != kNoSpan ||
        !event.args.empty()) {
      out.push_back(',');
      std::vector<Arg> args;
      if (event.id != kNoSpan) args.push_back(Arg::Uint("span", event.id));
      if (event.parent != kNoSpan) {
        args.push_back(Arg::Uint("parent", event.parent));
      }
      for (const Arg& a : event.args) args.push_back(a);
      AppendArgs(out, args);
    }
    out.push_back('}');
  }

  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

Status WriteChromeTrace(const Tracer& tracer, std::string_view path) {
  const std::string json = ExportChromeTrace(tracer);
  std::FILE* f = std::fopen(std::string(path).c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open trace output file: " + std::string(path));
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IoError("short write to trace output file: " + std::string(path));
  }
  return Status::OK();
}

}  // namespace smartssd::obs
