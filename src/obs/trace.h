#ifndef SMARTSSD_OBS_TRACE_H_
#define SMARTSSD_OBS_TRACE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::obs {

// Span-based tracing on the *virtual* clock. Every shared resource in
// the simulator (a flash channel, the device DRAM bus, an embedded
// core, the host link, a host core) registers a track; every piece of
// work it serves is recorded as a span [virtual start, virtual end] on
// that track, and discrete happenings (an ECC retry, an injected fault,
// a fallback decision) are recorded as instant events. The result is
// the pipeline-saturation picture the paper argues from: which track is
// solid with spans is which stage bottlenecks the configuration.
//
// Tracing is opt-in and null by default: modules hold a `Tracer*` that
// is nullptr until something attaches one, and every record site is
// guarded by that pointer. The disabled path is one branch — no virtual
// time is read (times are passed in by the code that already computed
// them), nothing allocates, and no timing computation changes, so all
// reported virtual times are identical to the nanosecond with tracing
// on or off.

using SpanId = std::uint64_t;
using TrackId = std::uint32_t;
inline constexpr SpanId kNoSpan = 0;

// Typed key/value argument attached to a span or instant event.
struct Arg {
  enum class Kind { kInt, kUint, kDouble, kString };

  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;

  static Arg Int(std::string_view key, std::int64_t value);
  static Arg Uint(std::string_view key, std::uint64_t value);
  static Arg Double(std::string_view key, double value);
  static Arg Str(std::string_view key, std::string_view value);
};

struct TraceEvent {
  enum class Phase { kSpan, kInstant };

  // Sentinel end time of a Begin()-opened span that has not ended yet.
  static constexpr SimTime kOpen = std::numeric_limits<SimTime>::max();

  Phase phase = Phase::kSpan;
  TrackId track = 0;
  SpanId id = kNoSpan;      // spans only; instants carry kNoSpan
  SpanId parent = kNoSpan;  // enclosing scope when the event was recorded
  std::string name;
  std::string category;
  SimTime start = 0;
  SimTime end = 0;
  std::vector<Arg> args;

  SimDuration duration() const { return end - start; }
  bool open() const { return phase == Phase::kSpan && end == kOpen; }
};

// One horizontal lane in the exported trace. `process` groups tracks
// into Chrome/Perfetto processes (one per simulated machine: the device,
// the host), `thread` names the lane within it.
struct Track {
  std::string process;
  std::string thread;
  std::uint32_t pid = 0;  // process index, in registration order
  std::uint32_t tid = 0;  // lane index within the process
};

class Tracer {
 public:
  Tracer() = default;
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Tracer);

  // Registers (or looks up — registration is idempotent per name pair)
  // the track for `thread` under `process`.
  TrackId RegisterTrack(std::string_view process, std::string_view thread);

  // Records a span whose start and end are both known. This is the
  // common case in the simulator: servers compute [start, completion]
  // in one step. Returns the span id (usable as a parent scope).
  SpanId Complete(TrackId track, std::string_view name,
                  std::string_view category, SimTime start, SimTime end,
                  std::vector<Arg> args = {});

  // Begin/End pair for spans whose end is not known up front (a query
  // that may fail mid-flight). End() adds `args` to the span's existing
  // ones. Ending an unknown or already-ended span is a programmer error.
  SpanId Begin(TrackId track, std::string_view name,
               std::string_view category, SimTime start,
               std::vector<Arg> args = {});
  void End(SpanId id, SimTime end, std::vector<Arg> args = {});

  // A point event (fault fired, retry burned, breaker tripped).
  void Instant(TrackId track, std::string_view name,
               std::string_view category, SimTime at,
               std::vector<Arg> args = {});

  // Scope stack for parent attribution: spans and instants recorded
  // while a scope is pushed carry its span id as `parent`. The simulator
  // is single-threaded, so one stack suffices.
  void PushScope(SpanId id) { scopes_.push_back(id); }
  void PopScope() {
    SMARTSSD_CHECK(!scopes_.empty());
    scopes_.pop_back();
  }
  SpanId current_scope() const {
    return scopes_.empty() ? kNoSpan : scopes_.back();
  }

  const std::vector<Track>& tracks() const { return tracks_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t open_spans() const { return open_spans_; }

  // Latest virtual time seen by any record call. Used to close spans
  // that die on an error path with no better end time.
  SimTime latest_time() const { return latest_time_; }

  // Sum of closed span durations on `track` — the span-derived
  // occupancy, which must agree with the server's own busy_time().
  SimDuration TrackBusy(TrackId track) const;

  // Drops all events (tracks and their ids survive, so attached modules
  // keep recording).
  void Clear();

 private:
  void Observe(SimTime t) {
    if (t != TraceEvent::kOpen && t > latest_time_) latest_time_ = t;
  }

  std::vector<Track> tracks_;
  std::vector<TraceEvent> events_;
  std::vector<SpanId> scopes_;
  SpanId next_span_id_ = 1;
  std::size_t open_spans_ = 0;
  SimTime latest_time_ = 0;
};

// RAII span for code with early error returns: opens the span, pushes
// it as the current scope, and — unless End() was called with a proper
// end time first — ends it at destruction (at `tracer->latest_time()`),
// so error paths cannot leak open spans or unbalance the scope stack.
// Safe to construct with a null tracer — every member is then a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, TrackId track, std::string_view name,
             std::string_view category, SimTime start,
             std::vector<Arg> args = {});
  ~ScopedSpan();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ScopedSpan);

  void End(SimTime end, std::vector<Arg> args = {});
  SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_ = kNoSpan;
  SimTime start_ = 0;
  bool ended_ = true;
};

// Scope attribution for resumable tasks. A ScopedSpan keeps its span on
// the scope stack for its whole lifetime, which only works for strictly
// nested (run-to-completion) execution: two interleaved query tasks
// would pop each other's scopes. A task instead opens its span with
// Begin(), holds the id across steps, and brackets *each step* with a
// ScopeGuard — events recorded during the step are attributed to the
// task's span, the stack is balanced at every step boundary, and
// interleaved tasks never see each other's scopes. Null-tracer and
// kNoSpan guards are no-ops.
class ScopeGuard {
 public:
  ScopeGuard(Tracer* tracer, SpanId id)
      : tracer_(id != kNoSpan ? tracer : nullptr) {
    if (tracer_ != nullptr) tracer_->PushScope(id);
  }
  ~ScopeGuard() {
    if (tracer_ != nullptr) tracer_->PopScope();
  }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ScopeGuard);

 private:
  Tracer* tracer_;
};

}  // namespace smartssd::obs

#endif  // SMARTSSD_OBS_TRACE_H_
