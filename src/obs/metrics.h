#ifndef SMARTSSD_OBS_METRICS_H_
#define SMARTSSD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::obs {

// Named instruments for regression-trackable counters alongside the
// span tracer. Modules look an instrument up once (registration is
// idempotent and returns a stable pointer) and bump it lock-free on the
// hot path; nothing here reads or advances the virtual clock, so
// metrics never perturb simulated timing.

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

// Log-scale histogram for virtual durations (or any uint64): bucket i
// holds values of bit width i, i.e. [2^(i-1), 2^i), with bucket 0 for
// zero. Percentiles interpolate linearly inside the hit bucket and are
// clamped to the recorded [min, max], so a single-valued histogram
// reports that exact value at every percentile; in general the error is
// bounded by the bucket width (under 2x).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;
  double mean() const;

  // p in [0, 1]; returns 0 for an empty histogram.
  double Percentile(double p) const;
  double p50() const { return Percentile(0.50); }
  double p95() const { return Percentile(0.95); }
  double p99() const { return Percentile(0.99); }

  const std::string& name() const { return name_; }
  void Reset();

 private:
  std::string name_;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time summary of a histogram, cheap to copy and safe to hand
// to code (placement policies, schedulers) that must not mutate or even
// register instruments. All fields are zero for an absent or empty
// histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

// Registry of named instruments. Lookup is registration: the first
// counter("x") creates it, every later call returns the same pointer,
// which stays valid for the registry's lifetime. Iteration order is the
// name order, so every export is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  // Read-side lookups: never register, so a policy consulting a signal
  // that no module has emitted yet sees "absent" instead of minting an
  // empty instrument (which would perturb exports). Return nullptr when
  // the name is unknown.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Value-level conveniences over the Find* lookups. GaugeValue returns
  // `fallback` when the gauge is absent; SnapshotHistogram returns an
  // all-zero snapshot when the histogram is absent or empty.
  std::int64_t GaugeValue(std::string_view name,
                          std::int64_t fallback = 0) const;
  std::uint64_t CounterValue(std::string_view name) const;
  HistogramSnapshot SnapshotHistogram(std::string_view name) const;

  // Flat exports: one line ("name value" / histogram summary) per
  // instrument, and a single JSON object with "counters" / "gauges" /
  // "histograms" sections.
  void PrintText(std::FILE* out) const;
  std::string ToJson() const;

  // Zeroes every instrument (pointers stay valid).
  void ResetAll();

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

// Null-safe bump helpers for modules whose registry attachment is
// optional (a bare SsdDevice in a bench has none).
inline void BumpCounter(Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr) counter->Add(n);
}
inline void RecordHistogram(Histogram* histogram, std::uint64_t value) {
  if (histogram != nullptr) histogram->Record(value);
}

}  // namespace smartssd::obs

#endif  // SMARTSSD_OBS_METRICS_H_
