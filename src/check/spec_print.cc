#include "check/spec_print.h"

namespace smartssd::check {

namespace {

const char* AggFnName(exec::AggSpec::Fn fn) {
  switch (fn) {
    case exec::AggSpec::Fn::kSum:
      return "SUM";
    case exec::AggSpec::Fn::kCount:
      return "COUNT";
    case exec::AggSpec::Fn::kMin:
      return "MIN";
    case exec::AggSpec::Fn::kMax:
      return "MAX";
  }
  return "?";
}

std::string IntList(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string SpecToString(const exec::QuerySpec& spec) {
  std::string out = "table=" + spec.table;
  out += spec.order == exec::PipelineOrder::kProbeFirst
             ? " order=probe-first"
             : " order=filter-first";
  if (spec.join.has_value()) {
    out += " join{inner=" + spec.join->inner_table +
           " outer_key=" + std::to_string(spec.join->outer_key_col) +
           " inner_key=" + std::to_string(spec.join->inner_key_col) +
           " payload=" + IntList(spec.join->inner_payload_cols) + "}";
  }
  out += " predicate=";
  out += spec.predicate == nullptr ? "(none)" : spec.predicate->ToString();
  if (!spec.aggregates.empty()) {
    out += " aggregates=[";
    for (std::size_t i = 0; i < spec.aggregates.size(); ++i) {
      if (i > 0) out += ", ";
      const exec::AggSpec& agg = spec.aggregates[i];
      out += AggFnName(agg.fn);
      out += "(";
      out += agg.input == nullptr ? "*" : agg.input->ToString();
      out += ")";
    }
    out += "]";
  }
  if (!spec.group_by.empty()) out += " group_by=" + IntList(spec.group_by);
  if (!spec.projection.empty()) {
    out += " projection=" + IntList(spec.projection);
  }
  if (spec.top_n.has_value()) {
    out += " top_n{col=" + std::to_string(spec.top_n->order_col);
    out += spec.top_n->descending ? " desc" : " asc";
    out += " limit=" + std::to_string(spec.top_n->limit) + "}";
  }
  return out;
}

}  // namespace smartssd::check
