#ifndef SMARTSSD_CHECK_TABLE_GEN_H_
#define SMARTSSD_CHECK_TABLE_GEN_H_

// Deterministic workload tables for the differential harness. Every
// cell value is a pure function of (seed, row, column), so a table
// loaded into one database, another layout, or partitioned across N
// parallel workers is byte-for-byte the same relation — the property
// the cross-path comparisons rest on.
//
// Outer fact table "F" (the scanned/probed side):
//   col 0  rid   INT32  row id, unique, equals the global row index
//   col 1  fk    INT32  FK into "D" in [1, fk_domain]; some values miss
//   col 2  cat   INT32  low cardinality, [0, 8)
//   col 3  sel   INT32  uniform in [0, 2^30)
//   col 4  v64   INT64  uniform in [0, 2^30)
//   col 5  w64   INT64  uniform in [0, 2^30)
//   col 6  v32   INT32  uniform in [0, 2^30)
//   col 7  cat2  INT32  low cardinality, [0, 5)
//
// Inner dimension table "D" (the hash-join build side):
//   col 0  dk    INT32  unique key, equals row + 1
//   col 1  dpay  INT32  uniform in [0, 2^30)
//   col 2  dval  INT64  uniform in [0, 2^30)
//
// Values stay in [0, 2^30) so INT64 SUM/arithmetic over a few thousand
// rows cannot overflow even with small literal multipliers.

#include <cstdint>

#include "common/result.h"
#include "engine/database.h"
#include "engine/fleet.h"
#include "engine/parallel.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace smartssd::check {

inline constexpr char kOuterTable[] = "F";
inline constexpr char kInnerTable[] = "D";
inline constexpr int kOuterColumns = 8;
inline constexpr int kInnerColumns = 3;
inline constexpr std::int64_t kValueDomain = std::int64_t{1} << 30;
inline constexpr std::int64_t kCatCardinality = 8;
inline constexpr std::int64_t kCat2Cardinality = 5;

struct TableGenConfig {
  std::uint64_t seed = 1;
  std::uint64_t outer_rows = 1'500;
  // Large enough that the differential spill configurations' join
  // budgets force multi-pass hybrid joins (the estimated hash table is
  // ~22 KiB against 12 KiB / 4 KiB budgets) while unconstrained
  // configurations still build it whole.
  std::uint64_t inner_rows = 512;

  // FK domain [1, fk_domain]; the quarter above inner_rows are probe
  // misses, so inner joins drop rows on every path.
  std::uint64_t fk_domain() const { return inner_rows + inner_rows / 4; }
};

storage::Schema OuterSchema();
storage::Schema InnerSchema();

// The cell value at (row, col); pure in (config.seed, row, col).
std::int64_t OuterValue(const TableGenConfig& config, std::uint64_t row,
                        int col);
std::int64_t InnerValue(const TableGenConfig& config, std::uint64_t row,
                        int col);

// Loads F and D into a single database in the given layout.
Status LoadTables(engine::Database& db, const TableGenConfig& config,
                  storage::PageLayout layout);

// Loads F partitioned (contiguous global row ranges) and D replicated
// across the workers of a parallel database.
Status LoadTablesPartitioned(engine::ParallelDatabase& db,
                             const TableGenConfig& config,
                             storage::PageLayout layout);

// Loads F partitioned and D replicated across a fleet's devices. The
// generator's purity makes every fleet shape cell-identical to the
// single-device load, so fleet results can be compared byte-for-byte
// against single-device ground truth.
Status LoadTablesFleet(engine::Fleet& fleet, const TableGenConfig& config,
                       storage::PageLayout layout);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_TABLE_GEN_H_
