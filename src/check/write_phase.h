#ifndef SMARTSSD_CHECK_WRITE_PHASE_H_
#define SMARTSSD_CHECK_WRITE_PHASE_H_

// Write phases for the differential harness: between query specs, the
// write-path databases absorb a deterministic ingest/update batch (an
// in-place update over a rid range and/or an append run), flush, and
// rebuild their statistics. Everything is a pure function of
// (seed, index), so replaying spec `index` regenerates phases 0..index
// and lands on the identical stored relation the failing sweep saw.
//
// The TableOracle mirrors the outer table's cells in memory across
// applied phases; Verify() re-reads the table from a database's device
// and compares cell-exact — the "no silent corruption" check that the
// FTL's out-of-place writes and garbage collection relocated every page
// faithfully.

#include <array>
#include <cstdint>
#include <vector>

#include "check/table_gen.h"
#include "common/result.h"
#include "engine/database.h"

namespace smartssd::check {

// Hard cap on rows a single phase appends (sizing extent reservations).
inline constexpr std::uint64_t kMaxWritePhaseAppendRows = 48;

struct WritePhaseSpec {
  bool enabled = false;  // disabled phases are exact no-ops

  // Update: rows with rid in [update_lo, update_hi] get `update_col`
  // rewritten to MutatedValue(salt, rid, update_col). rid (col 0) is
  // never mutated, so the same range selects the same rows on every
  // configuration.
  bool with_update = false;
  std::int64_t update_lo = 0;
  std::int64_t update_hi = -1;
  int update_col = 4;
  std::uint64_t salt = 0;

  // Append: rows with global indexes [tuple_count, +append_rows), cell
  // values from OuterValue — appended rows are indistinguishable from
  // bulk-loaded ones.
  std::uint64_t append_rows = 0;
};

// Pure in (seed, index): even indexes are disabled, odd indexes carry
// an update and/or an append.
WritePhaseSpec GenerateWritePhase(std::uint64_t seed, int index,
                                  const TableGenConfig& tables);

// The value an update phase writes into (rid, col); pure.
std::int64_t MutatedValue(std::uint64_t salt, std::int64_t rid, int col);

// In-memory mirror of the outer table "F" under applied write phases.
class TableOracle {
 public:
  explicit TableOracle(const TableGenConfig& config);

  void Apply(const WritePhaseSpec& phase);

  // Reads F back from the database's device (flushed state) and
  // compares every cell against the mirror.
  Status Verify(engine::Database& db) const;

  std::uint64_t rows() const { return rows_.size(); }

 private:
  TableGenConfig config_;
  std::vector<std::array<std::int64_t, kOuterColumns>> rows_;
};

// Applies one phase to a live database through the engine write path
// (TableUpdater + TableAppender), then Database::FlushAll so the device
// is the source of truth and zone maps are live again.
Status ApplyWritePhase(engine::Database& db, const TableGenConfig& config,
                       const WritePhaseSpec& phase);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_WRITE_PHASE_H_
