#include "check/write_phase.h"

#include <cstring>
#include <iterator>
#include <memory>
#include <vector>

#include "engine/update.h"
#include "expr/expression.h"
#include "storage/nsm_page.h"
#include "storage/pax_page.h"
#include "storage/tuple.h"

namespace smartssd::check {

namespace {

// Stateless mix, same family as table_gen's cell generator but salted
// differently so phase parameters never correlate with cell values.
std::uint64_t PhaseMix(std::uint64_t seed, std::uint64_t a,
                       std::uint64_t b) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL +
                    (a + 1) * 0xD6E8FEB86659FD93ULL +
                    (b + 1) * 0xA5A5B0356F4BD593ULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Columns an update phase may rewrite: never rid (identity), fk (join
// key), or the cat columns (group-by cardinality) — mutating those
// would change which *other* rows a query sees, which is fine, but
// keeping them stable makes failures much easier to read.
constexpr int kMutableCols[] = {3, 4, 5, 6};

}  // namespace

WritePhaseSpec GenerateWritePhase(std::uint64_t seed, int index,
                                  const TableGenConfig& tables) {
  WritePhaseSpec phase;
  if (index % 2 == 0) return phase;
  phase.enabled = true;
  const std::uint64_t i = static_cast<std::uint64_t>(index);
  phase.with_update = PhaseMix(seed, i, 1) % 4 != 0;
  const std::uint64_t lo = PhaseMix(seed, i, 2) % tables.outer_rows;
  const std::uint64_t span = 1 + PhaseMix(seed, i, 3) % 200;
  phase.update_lo = static_cast<std::int64_t>(lo);
  phase.update_hi = static_cast<std::int64_t>(lo + span);
  phase.update_col =
      kMutableCols[PhaseMix(seed, i, 4) % std::size(kMutableCols)];
  phase.salt = PhaseMix(seed, i, 5);
  if (PhaseMix(seed, i, 6) % 3 != 0) {
    phase.append_rows =
        1 + PhaseMix(seed, i, 7) % kMaxWritePhaseAppendRows;
  }
  if (!phase.with_update && phase.append_rows == 0) {
    phase.append_rows = 8;  // a phase always writes something
  }
  return phase;
}

std::int64_t MutatedValue(std::uint64_t salt, std::int64_t rid, int col) {
  return static_cast<std::int64_t>(
      PhaseMix(salt, static_cast<std::uint64_t>(rid),
               static_cast<std::uint64_t>(col)) %
      static_cast<std::uint64_t>(kValueDomain));
}

TableOracle::TableOracle(const TableGenConfig& config) : config_(config) {
  rows_.resize(config.outer_rows);
  for (std::uint64_t r = 0; r < config.outer_rows; ++r) {
    for (int c = 0; c < kOuterColumns; ++c) {
      rows_[r][static_cast<std::size_t>(c)] = OuterValue(config, r, c);
    }
  }
}

void TableOracle::Apply(const WritePhaseSpec& phase) {
  if (!phase.enabled) return;
  if (phase.with_update) {
    for (auto& row : rows_) {
      const std::int64_t rid = row[0];
      if (rid >= phase.update_lo && rid <= phase.update_hi) {
        row[static_cast<std::size_t>(phase.update_col)] =
            MutatedValue(phase.salt, rid, phase.update_col);
      }
    }
  }
  for (std::uint64_t i = 0; i < phase.append_rows; ++i) {
    const std::uint64_t global = rows_.size();
    std::array<std::int64_t, kOuterColumns> row;
    for (int c = 0; c < kOuterColumns; ++c) {
      row[static_cast<std::size_t>(c)] = OuterValue(config_, global, c);
    }
    rows_.push_back(row);
  }
}

Status TableOracle::Verify(engine::Database& db) const {
  SMARTSSD_ASSIGN_OR_RETURN(const storage::TableInfo* info,
                            db.catalog().GetTable(kOuterTable));
  if (info->tuple_count != rows_.size()) {
    return InternalError(
        "oracle: table has " + std::to_string(info->tuple_count) +
        " rows, expected " + std::to_string(rows_.size()));
  }
  const storage::Schema& schema = info->schema;
  std::vector<std::byte> buffer(db.device().page_size());
  std::uint64_t row = 0;
  for (std::uint64_t p = 0; p < info->page_count; ++p) {
    SMARTSSD_RETURN_IF_ERROR(
        db.device()
            .ReadPages(info->first_lpn + p, 1, buffer, /*ready=*/0)
            .status());
    auto check_cell = [&](std::uint64_t r, int c,
                          std::int64_t got) -> Status {
      const std::int64_t want = rows_[r][static_cast<std::size_t>(c)];
      if (got != want) {
        return InternalError(
            "oracle: F[" + std::to_string(r) + "][" + std::to_string(c) +
            "] = " + std::to_string(got) + ", expected " +
            std::to_string(want) + " (page " + std::to_string(p) + ")");
      }
      return Status::OK();
    };
    if (info->layout == storage::PageLayout::kNsm) {
      SMARTSSD_ASSIGN_OR_RETURN(
          const storage::NsmPageReader reader,
          storage::NsmPageReader::Open(&schema, buffer));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i, ++row) {
        const storage::TupleReader tuple(&schema, reader.tuple(i));
        for (int c = 0; c < schema.num_columns(); ++c) {
          const std::int64_t got =
              schema.column(c).type == storage::ColumnType::kInt64
                  ? tuple.GetInt64(c)
                  : tuple.GetInt32(c);
          SMARTSSD_RETURN_IF_ERROR(check_cell(row, c, got));
        }
      }
    } else {
      SMARTSSD_ASSIGN_OR_RETURN(
          const storage::PaxPageReader reader,
          storage::PaxPageReader::Open(&schema, buffer));
      for (std::uint16_t i = 0; i < reader.tuple_count(); ++i, ++row) {
        for (int c = 0; c < schema.num_columns(); ++c) {
          std::int64_t got;
          if (schema.column(c).type == storage::ColumnType::kInt64) {
            std::memcpy(&got, reader.value(i, c), sizeof(got));
          } else {
            std::int32_t v32;
            std::memcpy(&v32, reader.value(i, c), sizeof(v32));
            got = v32;
          }
          SMARTSSD_RETURN_IF_ERROR(check_cell(row, c, got));
        }
      }
    }
  }
  if (row != rows_.size()) {
    return InternalError("oracle: decoded " + std::to_string(row) +
                         " rows, expected " +
                         std::to_string(rows_.size()));
  }
  return Status::OK();
}

Status ApplyWritePhase(engine::Database& db, const TableGenConfig& config,
                       const WritePhaseSpec& phase) {
  if (!phase.enabled) return Status::OK();
  if (phase.with_update) {
    const expr::ExprPtr predicate = expr::And([&] {
      std::vector<expr::ExprPtr> terms;
      terms.push_back(expr::Ge(expr::Col(0), expr::Lit(phase.update_lo)));
      terms.push_back(expr::Le(expr::Col(0), expr::Lit(phase.update_hi)));
      return terms;
    }());
    engine::TableUpdater updater(&db);
    const int col = phase.update_col;
    const std::uint64_t salt = phase.salt;
    const storage::Schema schema = OuterSchema();
    const bool is64 =
        schema.column(col).type == storage::ColumnType::kInt64;
    SMARTSSD_RETURN_IF_ERROR(
        updater
            .Update(kOuterTable, predicate.get(),
                    [col, salt, is64](const expr::RowView& row,
                                      storage::TupleWriter& writer) {
                      const std::int64_t rid = row.GetColumn(0).AsInt();
                      const std::int64_t v = MutatedValue(salt, rid, col);
                      if (is64) {
                        writer.SetInt64(col, v);
                      } else {
                        writer.SetInt32(col,
                                        static_cast<std::int32_t>(v));
                      }
                    })
            .status());
  }
  if (phase.append_rows > 0) {
    engine::TableAppender appender(&db);
    const storage::Schema schema = OuterSchema();
    SMARTSSD_RETURN_IF_ERROR(
        appender
            .Append(kOuterTable, phase.append_rows,
                    [&config, &schema](std::uint64_t row,
                                       storage::TupleWriter& writer) {
                      for (int c = 0; c < schema.num_columns(); ++c) {
                        const std::int64_t v = OuterValue(config, row, c);
                        if (schema.column(c).type ==
                            storage::ColumnType::kInt64) {
                          writer.SetInt64(c, v);
                        } else {
                          writer.SetInt32(
                              c, static_cast<std::int32_t>(v));
                        }
                      }
                    })
            .status());
  }
  return db.FlushAll(/*ready=*/0).status();
}

}  // namespace smartssd::check
