#ifndef SMARTSSD_CHECK_SPEC_GEN_H_
#define SMARTSSD_CHECK_SPEC_GEN_H_

// Seeded random QuerySpec generation for the differential harness.
// GenerateSpec(seed, index) is pure: the same (seed, index) pair always
// yields the same spec, independent of any other spec generated before
// it — that is what makes a one-line replay possible.
//
// Generated specs are always Bind-valid against the table_gen tables
// and always parallel-safe: GROUP BY uses the low-cardinality columns,
// and top-N orders by the unique row-id column (which is always in the
// projection), so no configuration can disagree merely because of tie
// order.

#include <cstdint>

#include "check/table_gen.h"
#include "exec/query_spec.h"

namespace smartssd::check {

struct SpecGenConfig {
  TableGenConfig tables;
  // Probabilities, exposed for tests; the defaults are the sweep mix.
  double join_probability = 0.40;
  double probe_first_probability = 0.50;
  double predicate_probability = 0.80;
  double boundary_literal_probability = 0.15;
  double contradiction_probability = 0.10;
  double negate_probability = 0.20;
};

exec::QuerySpec GenerateSpec(std::uint64_t seed, int index,
                             const SpecGenConfig& config);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_SPEC_GEN_H_
