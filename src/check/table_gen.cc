#include "check/table_gen.h"

#include "storage/tuple.h"

namespace smartssd::check {

namespace {

// splitmix64-style stateless mix of (seed, row, col). Stateless is the
// point: partitioned loads call the generator with global row indexes
// from different workers, so cell values must not depend on call order.
std::uint64_t Mix(std::uint64_t seed, std::uint64_t row, std::uint64_t col) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL +
                    row * 0xBF58476D1CE4E5B9ULL +
                    (col + 1) * 0x94D049BB133111EBULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

storage::RowGenerator MakeGenerator(
    const storage::Schema& schema,
    std::function<std::int64_t(std::uint64_t row, int col)> value) {
  return [&schema, value = std::move(value)](std::uint64_t row,
                                             storage::TupleWriter& writer) {
    for (int col = 0; col < schema.num_columns(); ++col) {
      const std::int64_t v = value(row, col);
      if (schema.column(col).type == storage::ColumnType::kInt64) {
        writer.SetInt64(col, v);
      } else {
        writer.SetInt32(col, static_cast<std::int32_t>(v));
      }
    }
  };
}

}  // namespace

storage::Schema OuterSchema() {
  return storage::Schema::Create({
                                     storage::Column::Int32("rid"),
                                     storage::Column::Int32("fk"),
                                     storage::Column::Int32("cat"),
                                     storage::Column::Int32("sel"),
                                     storage::Column::Int64("v64"),
                                     storage::Column::Int64("w64"),
                                     storage::Column::Int32("v32"),
                                     storage::Column::Int32("cat2"),
                                 })
      .value();
}

storage::Schema InnerSchema() {
  return storage::Schema::Create({
                                     storage::Column::Int32("dk"),
                                     storage::Column::Int32("dpay"),
                                     storage::Column::Int64("dval"),
                                 })
      .value();
}

std::int64_t OuterValue(const TableGenConfig& config, std::uint64_t row,
                        int col) {
  const std::uint64_t h = Mix(config.seed, row, static_cast<std::uint64_t>(col));
  switch (col) {
    case 0:
      return static_cast<std::int64_t>(row);
    case 1:
      return 1 + static_cast<std::int64_t>(h % config.fk_domain());
    case 2:
      return static_cast<std::int64_t>(
          h % static_cast<std::uint64_t>(kCatCardinality));
    case 7:
      return static_cast<std::int64_t>(
          h % static_cast<std::uint64_t>(kCat2Cardinality));
    default:
      return static_cast<std::int64_t>(
          h % static_cast<std::uint64_t>(kValueDomain));
  }
}

std::int64_t InnerValue(const TableGenConfig& config, std::uint64_t row,
                        int col) {
  if (col == 0) return static_cast<std::int64_t>(row) + 1;
  const std::uint64_t h =
      Mix(config.seed ^ 0xD1FFABu, row, static_cast<std::uint64_t>(col));
  return static_cast<std::int64_t>(
      h % static_cast<std::uint64_t>(kValueDomain));
}

Status LoadTables(engine::Database& db, const TableGenConfig& config,
                  storage::PageLayout layout) {
  const storage::Schema outer = OuterSchema();
  const storage::Schema inner = InnerSchema();
  SMARTSSD_RETURN_IF_ERROR(
      db.LoadTable(kOuterTable, outer, layout, config.outer_rows,
                   MakeGenerator(outer,
                                 [&config](std::uint64_t row, int col) {
                                   return OuterValue(config, row, col);
                                 }))
          .status());
  SMARTSSD_RETURN_IF_ERROR(
      db.LoadTable(kInnerTable, inner, layout, config.inner_rows,
                   MakeGenerator(inner,
                                 [&config](std::uint64_t row, int col) {
                                   return InnerValue(config, row, col);
                                 }))
          .status());
  return Status::OK();
}

Status LoadTablesFleet(engine::Fleet& fleet, const TableGenConfig& config,
                       storage::PageLayout layout) {
  const storage::Schema outer = OuterSchema();
  const storage::Schema inner = InnerSchema();
  SMARTSSD_RETURN_IF_ERROR(fleet.LoadPartitionedTable(
      kOuterTable, outer, layout, config.outer_rows,
      MakeGenerator(outer, [&config](std::uint64_t row, int col) {
        return OuterValue(config, row, col);
      })));
  SMARTSSD_RETURN_IF_ERROR(fleet.LoadReplicatedTable(
      kInnerTable, inner, layout, config.inner_rows,
      MakeGenerator(inner, [&config](std::uint64_t row, int col) {
        return InnerValue(config, row, col);
      })));
  return Status::OK();
}

Status LoadTablesPartitioned(engine::ParallelDatabase& db,
                             const TableGenConfig& config,
                             storage::PageLayout layout) {
  const storage::Schema outer = OuterSchema();
  const storage::Schema inner = InnerSchema();
  SMARTSSD_RETURN_IF_ERROR(db.LoadPartitionedTable(
      kOuterTable, outer, layout, config.outer_rows,
      MakeGenerator(outer, [&config](std::uint64_t row, int col) {
        return OuterValue(config, row, col);
      })));
  SMARTSSD_RETURN_IF_ERROR(db.LoadReplicatedTable(
      kInnerTable, inner, layout, config.inner_rows,
      MakeGenerator(inner, [&config](std::uint64_t row, int col) {
        return InnerValue(config, row, col);
      })));
  return Status::OK();
}

}  // namespace smartssd::check
