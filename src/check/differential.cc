#include "check/differential.h"

#include <iterator>
#include <memory>
#include <optional>
#include <utility>

#include "check/invariants.h"
#include "check/result_compare.h"
#include "check/spec_print.h"
#include "check/table_gen.h"
#include "check/write_phase.h"
#include "engine/executor.h"
#include "engine/fleet.h"
#include "engine/parallel.h"
#include "expr/kernel_isa.h"
#include "sim/fault_injector.h"

namespace smartssd::check {

namespace {

using engine::Database;
using engine::DatabaseOptions;
using engine::ExecutionTarget;
using engine::Fleet;
using engine::ParallelDatabase;
using engine::QueryExecutor;

// Fault kinds safe for differential runs: each either recovers inside
// the session (stall retry) or kills it and triggers the byte-identical
// host fallback. kTransferError is excluded — it also fires on the
// host path, where there is nothing to fall back to.
constexpr sim::FaultKind kFaultRotation[] = {
    sim::FaultKind::kGetStall,           sim::FaultKind::kDeviceReset,
    sim::FaultKind::kOpenRejected,       sim::FaultKind::kResultQueueOverflow,
    sim::FaultKind::kUncorrectableRead,
};

// A deliberately tiny, GC-prone device for the write-phase databases:
// 256 physical pages with 25% over-provisioning, so the write phases'
// out-of-place page writes drain the free lists and force the garbage
// collector to actually run under the differential comparisons.
DatabaseOptions GcProneOptions(std::uint64_t buffer_pool_pages,
                               ftl::GcPolicyKind policy) {
  DatabaseOptions options = DatabaseOptions::PaperSmartSsd();
  options.buffer_pool_pages = buffer_pool_pages;
  options.ssd.geometry.channels = 2;
  options.ssd.geometry.chips_per_channel = 2;
  options.ssd.geometry.blocks_per_chip = 8;
  options.ssd.geometry.pages_per_block = 8;
  options.ssd.geometry.page_size_bytes = 2048;
  options.ssd.dram.capacity_bytes = 64 * kMiB;
  options.ssd.ftl.over_provisioning = 0.25;
  options.ssd.ftl.gc_low_watermark_blocks = 2;
  options.ssd.ftl.gc_policy = policy;
  return options;
}

// Loads F (with extent headroom for the sweep's appends) and D into a
// write-path database. Same pure cell generators as LoadTables.
Status LoadWritePathTables(Database& db, const TableGenConfig& config,
                           std::uint64_t reserve_pages) {
  const storage::Schema outer = OuterSchema();
  const storage::Schema inner = InnerSchema();
  auto fill = [](const storage::Schema& schema,
                 auto value) -> storage::RowGenerator {
    return [&schema, value](std::uint64_t row,
                            storage::TupleWriter& writer) {
      for (int c = 0; c < schema.num_columns(); ++c) {
        const std::int64_t v = value(row, c);
        if (schema.column(c).type == storage::ColumnType::kInt64) {
          writer.SetInt64(c, v);
        } else {
          writer.SetInt32(c, static_cast<std::int32_t>(v));
        }
      }
    };
  };
  SMARTSSD_RETURN_IF_ERROR(
      db.LoadTable(kOuterTable, outer, storage::PageLayout::kNsm,
                   config.outer_rows,
                   fill(outer,
                        [&config](std::uint64_t row, int col) {
                          return OuterValue(config, row, col);
                        }),
                   reserve_pages)
          .status());
  SMARTSSD_RETURN_IF_ERROR(
      db.LoadTable(kInnerTable, inner, storage::PageLayout::kNsm,
                   config.inner_rows,
                   fill(inner,
                        [&config](std::uint64_t row, int col) {
                          return InnerValue(config, row, col);
                        }))
          .status());
  return Status::OK();
}

sim::FaultSchedule MakeSchedule(sim::FaultKind kind) {
  sim::FaultSchedule schedule;
  if (kind == sim::FaultKind::kUncorrectableRead) {
    // Fires on the session's second flash page read, so it is spent
    // before a host fallback re-reads the same pages.
    schedule.faults.push_back(sim::FaultSpec{
        kind, {sim::TriggerUnit::kPagesRead, 2}, 1});
  } else {
    // Protocol charge points check virtual time without advancing
    // counters; `at == 0` arms the fault for the first event.
    schedule.faults.push_back(
        sim::FaultSpec{kind, {sim::TriggerUnit::kSimTime, 0}, 1});
  }
  return schedule;
}

// One seed's worth of databases: the same relation loaded into every
// configuration once, then reused for all the seed's specs.
class DifferentialRunner {
 public:
  DifferentialRunner(std::uint64_t seed, const HarnessOptions& options)
      : seed_(seed), options_(options) {
    gen_ = options.gen;
    gen_.tables.seed = seed;

    DatabaseOptions base = DatabaseOptions::PaperSmartSsd();
    base.buffer_pool_pages = options.buffer_pool_pages;

    // The ground truth runs the interpreted scalar kernel while every
    // other config runs the default vectorized one, so each of the 11
    // comparisons is also a scalar-vs-vectorized differential (results
    // AND OpCounts must match byte for byte).
    DatabaseOptions ref = base;
    ref.kernel = exec::KernelMode::kScalar;

    db_ref_ = std::make_unique<Database>(ref);
    // Identical to the scalar reference except for the kernel: the one
    // config pair that is count-comparable (same pages, no pruning), so
    // it proves the vectorized kernel charges the exact same OpCounts.
    db_ref_vec_ = std::make_unique<Database>(base);
    db_nsm_ = std::make_unique<Database>(base);
    db_pax_ = std::make_unique<Database>(base);

    // Spill axis: tiny join budgets against the ~22 KiB inner hash
    // table force 2-pass (12 KiB) and 3-pass (4 KiB) hybrid joins. No
    // zone map and NSM layout, so these configs read the exact pages
    // the reference does — results AND OpCounts must both match it
    // byte-for-byte (spilling is pure overhead, never semantics).
    DatabaseOptions spill2 = base;
    spill2.join_spill.budget_bytes = 12 * 1024;
    DatabaseOptions spill3 = base;
    spill3.join_spill.budget_bytes = 4096;
    db_spill2_ = std::make_unique<Database>(spill2);
    db_spill3_ = std::make_unique<Database>(spill3);

    // Placement axis: the split policy fragments each eligible scan
    // across the host and device halves and merges the partials, on an
    // unpruned NSM database — so its OpCounts must equal the monolithic
    // reference exactly (fragmentation is pure scheduling, never
    // semantics). The adaptive policy runs on PAX with a zone map and
    // is compared rows-only, like the other pruned configs.
    DatabaseOptions split_opts = base;
    split_opts.placement = engine::PlacementPolicyKind::kSplit;
    DatabaseOptions adapt_opts = base;
    adapt_opts.placement = engine::PlacementPolicyKind::kAdaptive;
    db_split_ = std::make_unique<Database>(split_opts);
    db_adapt_ = std::make_unique<Database>(adapt_opts);
    SMARTSSD_CHECK(
        LoadTables(*db_ref_, gen_.tables, storage::PageLayout::kNsm).ok());
    SMARTSSD_CHECK(
        LoadTables(*db_ref_vec_, gen_.tables, storage::PageLayout::kNsm)
            .ok());
    SMARTSSD_CHECK(
        LoadTables(*db_nsm_, gen_.tables, storage::PageLayout::kNsm).ok());
    SMARTSSD_CHECK(
        LoadTables(*db_pax_, gen_.tables, storage::PageLayout::kPax).ok());
    SMARTSSD_CHECK(
        LoadTables(*db_spill2_, gen_.tables, storage::PageLayout::kNsm)
            .ok());
    SMARTSSD_CHECK(
        LoadTables(*db_spill3_, gen_.tables, storage::PageLayout::kNsm)
            .ok());
    SMARTSSD_CHECK(
        LoadTables(*db_split_, gen_.tables, storage::PageLayout::kNsm)
            .ok());
    SMARTSSD_CHECK(
        LoadTables(*db_adapt_, gen_.tables, storage::PageLayout::kPax)
            .ok());
    // The reference database keeps NO zone map: it is the unpruned
    // ground truth a broken pruning path must disagree with.
    SMARTSSD_CHECK(db_nsm_->BuildZoneMap(kOuterTable).ok());
    SMARTSSD_CHECK(db_pax_->BuildZoneMap(kOuterTable).ok());
    SMARTSSD_CHECK(db_adapt_->BuildZoneMap(kOuterTable).ok());

    par1_ = std::make_unique<ParallelDatabase>(1, base);
    par2_ = std::make_unique<ParallelDatabase>(2, base);
    par4_ = std::make_unique<ParallelDatabase>(4, base);
    SMARTSSD_CHECK(LoadTablesPartitioned(*par1_, gen_.tables,
                                         storage::PageLayout::kNsm)
                       .ok());
    SMARTSSD_CHECK(LoadTablesPartitioned(*par2_, gen_.tables,
                                         storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(LoadTablesPartitioned(*par4_, gen_.tables,
                                         storage::PageLayout::kNsm)
                       .ok());
    for (ParallelDatabase* par : {par1_.get(), par2_.get(), par4_.get()}) {
      for (int w = 0; w < par->workers(); ++w) {
        SMARTSSD_CHECK(par->worker(w).BuildZoneMap(kOuterTable).ok());
      }
    }

    // Fleet shapes: a uniform 3-device fleet and a heterogeneous
    // 2-device fleet (device 1 gets a weaker embedded CPU — results
    // must not care how fast a partition computed). The per-device
    // fault seeds derive from the spec seed, so replay lines stay
    // one-line reproducible.
    fleet3_ = std::make_unique<Fleet>(3, base, /*fleet_seed=*/seed);
    DatabaseOptions slow = base;
    slow.ssd.embedded_cpu.cores = 2;
    slow.ssd.embedded_cpu.clock_hz = 300ull * 1000 * 1000;
    fleet_het2_ = std::make_unique<Fleet>(
        std::vector<DatabaseOptions>{base, slow}, /*fleet_seed=*/seed);
    SMARTSSD_CHECK(LoadTablesFleet(*fleet3_, gen_.tables,
                                   storage::PageLayout::kNsm)
                       .ok());
    SMARTSSD_CHECK(LoadTablesFleet(*fleet_het2_, gen_.tables,
                                   storage::PageLayout::kPax)
                       .ok());
    SMARTSSD_CHECK(fleet3_->BuildZoneMaps(kOuterTable).ok());
    SMARTSSD_CHECK(fleet_het2_->BuildZoneMaps(kOuterTable).ok());

    // Write-path pair: one GC-prone database per victim-selection
    // policy, plus the in-memory oracle their stored bytes are verified
    // against after every applied phase.
    if (options_.with_write_phase) {
      const std::uint64_t reserve_rows =
          static_cast<std::uint64_t>(
              options.specs_per_seed < 1 ? 1 : options.specs_per_seed) *
          kMaxWritePhaseAppendRows;
      // Conservative 40-byte tuples in 2 KiB pages.
      const std::uint64_t reserve_pages = reserve_rows / 40 + 2;
      db_gc_greedy_ = std::make_unique<Database>(GcProneOptions(
          options.buffer_pool_pages, ftl::GcPolicyKind::kGreedy));
      db_gc_cb_ = std::make_unique<Database>(GcProneOptions(
          options.buffer_pool_pages, ftl::GcPolicyKind::kCostBenefit));
      for (Database* db : {db_gc_greedy_.get(), db_gc_cb_.get()}) {
        SMARTSSD_CHECK(
            LoadWritePathTables(*db, gen_.tables, reserve_pages).ok());
        SMARTSSD_CHECK(db->BuildZoneMap(kOuterTable).ok());
      }
      oracle_.emplace(gen_.tables);
      db_gc_greedy_->AttachTracer(&tracer_gcg_, "gcg-dev", "gcg-host");
      db_gc_cb_->AttachTracer(&tracer_gcc_, "gcc-dev", "gcc-host");
    }

    db_ref_->AttachTracer(&tracer_ref_, "ref-dev", "ref-host");
    db_ref_vec_->AttachTracer(&tracer_ref_vec_, "refv-dev", "refv-host");
    db_nsm_->AttachTracer(&tracer_nsm_, "nsm-dev", "nsm-host");
    db_pax_->AttachTracer(&tracer_pax_, "pax-dev", "pax-host");
    db_spill2_->AttachTracer(&tracer_spill2_, "sp2-dev", "sp2-host");
    db_spill3_->AttachTracer(&tracer_spill3_, "sp3-dev", "sp3-host");
    db_split_->AttachTracer(&tracer_split_, "spl-dev", "spl-host");
    db_adapt_->AttachTracer(&tracer_adapt_, "adp-dev", "adp-host");
    fleet3_->AttachTracer(&tracer_fleet3_);
    fleet_het2_->AttachTracer(&tracer_fleet2_);
  }

  int executions() const { return executions_; }
  int fallbacks() const { return fallbacks_; }

  // Runs `spec` through the whole matrix; the first divergence (or
  // error, or invariant violation) is returned as (config, message).
  std::optional<std::pair<std::string, std::string>> CheckSpec(
      const exec::QuerySpec& spec, int index) {
    // Fast-forward any pending write phases up to this spec (apply-once:
    // Minimize's repeated CheckSpec calls see the state they already
    // saw). Phases are pure in (seed, phase_index), which is what keeps
    // ReplaySpec(seed, index) landing on the sweep's exact relation.
    if (options_.with_write_phase) {
      while (next_write_index_ <= index) {
        const WritePhaseSpec phase =
            GenerateWritePhase(seed_, next_write_index_, gen_.tables);
        for (Database* db : {db_gc_greedy_.get(), db_gc_cb_.get()}) {
          if (Status s = ApplyWritePhase(*db, gen_.tables, phase);
              !s.ok()) {
            return std::make_pair(std::string("write-phase"),
                                  s.ToString());
          }
        }
        oracle_->Apply(phase);
        ++next_write_index_;
      }
      // Cell-exact readback: whatever GC relocated, the stored relation
      // must equal the oracle on both devices.
      if (Status s = oracle_->Verify(*db_gc_greedy_); !s.ok()) {
        return std::make_pair(std::string("gcgreedy-oracle"),
                              s.ToString());
      }
      if (Status s = oracle_->Verify(*db_gc_cb_); !s.ok()) {
        return std::make_pair(std::string("gccb-oracle"), s.ToString());
      }
    }

    auto ref = RunSingle(*db_ref_, tracer_ref_, spec,
                         ExecutionTarget::kHost, "ref-nsm-host", nullptr);
    if (!ref.ok()) {
      return std::make_pair(std::string("ref-nsm-host"),
                            ref.status().ToString());
    }

    // The vectorized twin of the reference: same unpruned NSM database,
    // batch kernel. Results AND operation counts must match the scalar
    // interpreter exactly — this is the count-identity proof; the other
    // configs legitimately differ in pages/tuples (pruning, layout).
    {
      auto vec = RunSingle(*db_ref_vec_, tracer_ref_vec_, spec,
                           ExecutionTarget::kHost, "ref-nsm-host-vec",
                           nullptr);
      if (!vec.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec"),
                              vec.status().ToString());
      }
      if (Status diff = CompareOutputs(*ref, *vec); !diff.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec"),
                              diff.ToString());
      }
      if (Status diff = CompareCounts(*ref, *vec); !diff.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec"),
                              diff.ToString());
      }
    }

    // ISA axis: when this machine's best kernel ISA is not plain scalar
    // code, re-run the vectorized twin with the SIMD lanes forced off.
    // Configs run strictly sequentially, so scoping the process-global
    // ISA around one run is safe. Proves the SIMD compare/compact/
    // gather kernels are bit-identical to their scalar fallbacks on
    // whatever CPU the sweep happens to run on.
    if (expr::DetectKernelIsa() != expr::KernelIsa::kScalarIsa) {
      const expr::ScopedKernelIsa force_scalar(expr::KernelIsa::kScalarIsa);
      auto vec = RunSingle(*db_ref_vec_, tracer_ref_vec_, spec,
                           ExecutionTarget::kHost,
                           "ref-nsm-host-vec-scalar-isa", nullptr);
      if (!vec.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec-scalar-isa"),
                              vec.status().ToString());
      }
      if (Status diff = CompareOutputs(*ref, *vec); !diff.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec-scalar-isa"),
                              diff.ToString());
      }
      if (Status diff = CompareCounts(*ref, *vec); !diff.ok()) {
        return std::make_pair(std::string("ref-nsm-host-vec-scalar-isa"),
                              diff.ToString());
      }
    }

    struct SingleConfig {
      const char* name;
      Database* db;
      obs::Tracer* tracer;
      ExecutionTarget target;
      std::optional<sim::FaultKind> fault;
      // Spill configs read the same unpruned NSM pages the reference
      // does, so their OpCounts must be identical too: a hybrid join
      // that charges its partitioning or spill I/O into the counts (or
      // drops/doubles a probe across passes) fails here even when the
      // output bytes happen to survive.
      bool compare_counts = false;
      // Route through the database's placement policy (ExecuteAuto)
      // instead of a pinned target; `target` is ignored then.
      bool auto_target = false;
    };
    std::vector<SingleConfig> singles = {
        {"nsm-host", db_nsm_.get(), &tracer_nsm_, ExecutionTarget::kHost,
         std::nullopt},
        {"nsm-smart", db_nsm_.get(), &tracer_nsm_,
         ExecutionTarget::kSmartSsd, std::nullopt},
        {"pax-host", db_pax_.get(), &tracer_pax_, ExecutionTarget::kHost,
         std::nullopt},
        {"pax-smart", db_pax_.get(), &tracer_pax_,
         ExecutionTarget::kSmartSsd, std::nullopt},
        {"nsm-spill2-smart", db_spill2_.get(), &tracer_spill2_,
         ExecutionTarget::kSmartSsd, std::nullopt, true},
        {"nsm-spill3-smart", db_spill3_.get(), &tracer_spill3_,
         ExecutionTarget::kSmartSsd, std::nullopt, true},
        // The split policy fragments the scan across both sides and
        // merges partials: results AND OpCounts must equal the unpruned
        // monolithic reference exactly. Specs a split cannot serve
        // (joins, top-N, single-page tables) fall back to whole-query
        // cost-model routing inside the policy, so every generated spec
        // still runs — and still has to match.
        {"nsm-split-smart", db_split_.get(), &tracer_split_,
         ExecutionTarget::kHost, std::nullopt, true, true},
        // Adaptive routing over PAX + zone map: whatever side (or both)
        // the live signals pick, rows must match the ground truth.
        {"pax-adaptive-smart", db_adapt_.get(), &tracer_adapt_,
         ExecutionTarget::kHost, std::nullopt, false, true},
    };
    if (options_.with_faults) {
      const std::size_t n = std::size(kFaultRotation);
      singles.push_back({"nsm-smart-fault", db_nsm_.get(), &tracer_nsm_,
                         ExecutionTarget::kSmartSsd,
                         kFaultRotation[static_cast<std::size_t>(index) % n]});
      singles.push_back(
          {"pax-smart-fault", db_pax_.get(), &tracer_pax_,
           ExecutionTarget::kSmartSsd,
           kFaultRotation[(static_cast<std::size_t>(index) + 2) % n]});
      // A session dying mid-spill must release its flash extents and
      // fall back to a byte-identical host join (the host rerun scans
      // the same unpruned pages, so counts stay comparable).
      singles.push_back(
          {"nsm-spill2-smart-fault", db_spill2_.get(), &tracer_spill2_,
           ExecutionTarget::kSmartSsd,
           kFaultRotation[(static_cast<std::size_t>(index) + 1) % n], true});
      singles.push_back(
          {"nsm-spill3-smart-fault", db_spill3_.get(), &tracer_spill3_,
           ExecutionTarget::kSmartSsd,
           kFaultRotation[(static_cast<std::size_t>(index) + 3) % n], true});
    }
    for (const SingleConfig& config : singles) {
      sim::FaultSchedule schedule;
      if (config.fault.has_value()) schedule = MakeSchedule(*config.fault);
      auto out = RunSingle(*config.db, *config.tracer, spec, config.target,
                           config.name,
                           config.fault.has_value() ? &schedule : nullptr,
                           config.auto_target);
      if (!out.ok()) {
        return std::make_pair(std::string(config.name),
                              out.status().ToString());
      }
      if (Status diff = CompareOutputs(*ref, *out); !diff.ok()) {
        return std::make_pair(std::string(config.name),
                              diff.ToString());
      }
      if (config.compare_counts) {
        if (Status diff = CompareCounts(*ref, *out); !diff.ok()) {
          return std::make_pair(std::string(config.name),
                                diff.ToString());
        }
      }
    }

    struct ParConfig {
      const char* name;
      ParallelDatabase* par;
      std::optional<sim::FaultKind> fault;
    };
    std::vector<ParConfig> parallels = {
        {"par1-nsm-smart", par1_.get(), std::nullopt},
        {"par2-pax-smart", par2_.get(), std::nullopt},
        {"par4-nsm-smart", par4_.get(), std::nullopt},
    };
    if (options_.with_faults) {
      parallels.push_back(
          {"par2-pax-smart-fault", par2_.get(),
           kFaultRotation[(static_cast<std::size_t>(index) + 4) %
                          std::size(kFaultRotation)]});
    }
    for (const ParConfig& config : parallels) {
      sim::FaultSchedule schedule;
      if (config.fault.has_value()) schedule = MakeSchedule(*config.fault);
      auto out = RunParallel(*config.par, spec, config.name,
                             config.fault.has_value() ? &schedule : nullptr);
      if (!out.ok()) {
        return std::make_pair(std::string(config.name),
                              out.status().ToString());
      }
      if (Status diff = CompareOutputs(*ref, *out); !diff.ok()) {
        return std::make_pair(std::string(config.name), diff.ToString());
      }
    }

    // Fleet scatter-gather: every shape must reproduce the single-device
    // ground truth byte-for-byte — healthy, with a rotating fault on a
    // rotating device (per-partition host fallback), and with one
    // device's breaker pre-tripped (breaker-open re-dispatch).
    struct FleetConfig {
      const char* name;
      Fleet* fleet;
      obs::Tracer* tracer;
      std::optional<sim::FaultKind> fault;
      bool pretrip_breaker;
    };
    std::vector<FleetConfig> fleets = {
        {"fleet3-nsm-smart", fleet3_.get(), &tracer_fleet3_, std::nullopt,
         false},
        {"fleet2het-pax-smart", fleet_het2_.get(), &tracer_fleet2_,
         std::nullopt, false},
    };
    if (options_.with_faults) {
      const std::size_t n = std::size(kFaultRotation);
      fleets.push_back({"fleet3-nsm-smart-fault", fleet3_.get(),
                        &tracer_fleet3_,
                        kFaultRotation[(static_cast<std::size_t>(index) + 1) % n],
                        false});
      fleets.push_back({"fleet2het-pax-smart-fault", fleet_het2_.get(),
                        &tracer_fleet2_,
                        kFaultRotation[(static_cast<std::size_t>(index) + 3) % n],
                        false});
      fleets.push_back({"fleet3-nsm-smart-redispatch", fleet3_.get(),
                        &tracer_fleet3_, std::nullopt, true});
    }
    for (const FleetConfig& config : fleets) {
      auto out = RunFleet(*config.fleet, *config.tracer, spec, config.name,
                          config.fault, config.pretrip_breaker, index);
      if (!out.ok()) {
        return std::make_pair(std::string(config.name),
                              out.status().ToString());
      }
      if (Status diff = CompareOutputs(*ref, *out); !diff.ok()) {
        return std::make_pair(std::string(config.name), diff.ToString());
      }
    }

    // Write-path quartet. The GC databases hold a different relation
    // from the reference (phases updated and appended rows), so their
    // ground truth is the greedy-policy host scan — the other three
    // configurations must match it byte-for-byte. Host-vs-host counts
    // must also agree: GC policy choice may move pages physically but
    // can never change what the host observes.
    if (options_.with_write_phase) {
      auto gc_ref =
          RunSingle(*db_gc_greedy_, tracer_gcg_, spec,
                    ExecutionTarget::kHost, "gcgreedy-nsm-host", nullptr);
      if (!gc_ref.ok()) {
        return std::make_pair(std::string("gcgreedy-nsm-host"),
                              gc_ref.status().ToString());
      }
      struct GcConfig {
        const char* name;
        Database* db;
        obs::Tracer* tracer;
        ExecutionTarget target;
        bool compare_counts;
      };
      const GcConfig gc_configs[] = {
          {"gcgreedy-nsm-smart", db_gc_greedy_.get(), &tracer_gcg_,
           ExecutionTarget::kSmartSsd, false},
          {"gccb-nsm-host", db_gc_cb_.get(), &tracer_gcc_,
           ExecutionTarget::kHost, true},
          {"gccb-nsm-smart", db_gc_cb_.get(), &tracer_gcc_,
           ExecutionTarget::kSmartSsd, false},
      };
      for (const GcConfig& config : gc_configs) {
        auto out = RunSingle(*config.db, *config.tracer, spec,
                             config.target, config.name, nullptr);
        if (!out.ok()) {
          return std::make_pair(std::string(config.name),
                                out.status().ToString());
        }
        if (Status diff = CompareOutputs(*gc_ref, *out); !diff.ok()) {
          return std::make_pair(std::string(config.name),
                                diff.ToString());
        }
        if (config.compare_counts) {
          if (Status diff = CompareCounts(*gc_ref, *out); !diff.ok()) {
            return std::make_pair(std::string(config.name),
                                  diff.ToString());
          }
        }
      }
    }
    return std::nullopt;
  }

  // Component-dropping minimization: repeatedly remove pieces of the
  // spec while it still fails, restoring each piece that turns out to
  // be load-bearing. Expressions are move-only (no Clone()), so the
  // minimizer mutates in place and moves components back on a miss.
  void Minimize(exec::QuerySpec& spec, int index) {
    bool changed = true;
    while (changed) {
      changed = false;

      if (spec.top_n.has_value()) {
        std::optional<exec::TopNSpec> saved;
        std::swap(saved, spec.top_n);
        if (StillFails(spec, index)) {
          changed = true;
        } else {
          std::swap(saved, spec.top_n);
        }
      }
      if (!spec.group_by.empty()) {
        std::vector<int> saved;
        std::swap(saved, spec.group_by);
        if (StillFails(spec, index)) {
          changed = true;
        } else {
          std::swap(saved, spec.group_by);
        }
      }
      if (spec.aggregates.size() > 1) {
        std::vector<exec::AggSpec> tail;
        for (std::size_t i = 1; i < spec.aggregates.size(); ++i) {
          tail.push_back(std::move(spec.aggregates[i]));
        }
        spec.aggregates.resize(1);
        if (StillFails(spec, index)) {
          changed = true;
        } else {
          for (exec::AggSpec& agg : tail) {
            spec.aggregates.push_back(std::move(agg));
          }
        }
      }
      if (spec.predicate != nullptr) {
        expr::ExprPtr saved = std::move(spec.predicate);
        if (StillFails(spec, index)) {
          changed = true;
        } else {
          spec.predicate = std::move(saved);
        }
      }
      if (spec.projection.size() > 1) {
        // Keep the order column (always projection[0] by construction)
        // so a top-N spec stays valid.
        std::vector<int> saved = spec.projection;
        spec.projection.resize(1);
        if (StillFails(spec, index)) {
          changed = true;
        } else {
          spec.projection = std::move(saved);
        }
      }
      if (spec.join.has_value()) {
        std::optional<exec::JoinSpec> saved_join;
        std::swap(saved_join, spec.join);
        const exec::PipelineOrder saved_order = spec.order;
        spec.order = exec::PipelineOrder::kFilterFirst;
        if (BindsClean(spec) && StillFails(spec, index)) {
          changed = true;
        } else {
          std::swap(saved_join, spec.join);
          spec.order = saved_order;
        }
      }
    }
  }

 private:
  bool BindsClean(const exec::QuerySpec& spec) {
    return exec::Bind(spec, db_ref_->catalog()).ok();
  }

  bool StillFails(const exec::QuerySpec& spec, int index) {
    return BindsClean(spec) && CheckSpec(spec, index).has_value();
  }

  Result<ExecutionOutput> RunSingle(Database& db, obs::Tracer& tracer,
                                    const exec::QuerySpec& spec,
                                    ExecutionTarget target,
                                    const char* config,
                                    const sim::FaultSchedule* faults,
                                    bool auto_target = false) {
    ++executions_;
    db.ResetForColdRun();
    tracer.Clear();
    if (faults != nullptr && db.ssd() != nullptr) {
      db.ssd()->fault_injector().Load(*faults);
    }
    QueryExecutor executor(&db);
    Result<engine::QueryResult> result =
        auto_target ? executor.ExecuteAuto(spec)
                    : executor.Execute(spec, target);
    if (db.ssd() != nullptr) db.ssd()->fault_injector().Clear();
    SMARTSSD_RETURN_IF_ERROR(result.status());
    if (result->stats.fell_back) ++fallbacks_;
    SMARTSSD_RETURN_IF_ERROR(CheckTraceInvariants(tracer));
    SMARTSSD_RETURN_IF_ERROR(CheckDatabaseInvariants(db));
    return FromQuery(config, result.value());
  }

  Result<ExecutionOutput> RunParallel(ParallelDatabase& par,
                                      const exec::QuerySpec& spec,
                                      const char* config,
                                      const sim::FaultSchedule* faults) {
    ++executions_;
    par.ResetForColdRun();
    if (faults != nullptr && par.worker(0).ssd() != nullptr) {
      par.worker(0).ssd()->fault_injector().Load(*faults);
    }
    Result<engine::ParallelQueryResult> result =
        par.Execute(spec, ExecutionTarget::kSmartSsd);
    for (int w = 0; w < par.workers(); ++w) {
      if (par.worker(w).ssd() != nullptr) {
        par.worker(w).ssd()->fault_injector().Clear();
      }
    }
    SMARTSSD_RETURN_IF_ERROR(result.status());
    for (const engine::QueryStats& stats : result->worker_stats) {
      if (stats.fell_back) ++fallbacks_;
    }
    for (int w = 0; w < par.workers(); ++w) {
      SMARTSSD_RETURN_IF_ERROR(CheckDatabaseInvariants(par.worker(w)));
    }
    return FromParallel(config, result.value());
  }

  Result<ExecutionOutput> RunFleet(Fleet& fleet, obs::Tracer& tracer,
                                   const exec::QuerySpec& spec,
                                   const char* config,
                                   const std::optional<sim::FaultKind>& fault,
                                   bool pretrip_breaker, int index) {
    ++executions_;
    fleet.ResetForColdRun();
    tracer.Clear();
    // Breaker state is deterministic per run, never carried across
    // specs (a previous spec's faults must not steer this one).
    for (int d = 0; d < fleet.devices(); ++d) {
      fleet.device(d).circuit_breaker().Reset();
    }
    const int target_device = index % fleet.devices();
    if (fault.has_value()) {
      fleet.LoadFaultSchedule(target_device, MakeSchedule(*fault));
    }
    if (pretrip_breaker) {
      // Trip one device's breaker so the coordinator re-dispatches its
      // partition to the host path at admission — the result must not
      // change by a byte.
      engine::DeviceCircuitBreaker& breaker =
          fleet.device(target_device).circuit_breaker();
      for (std::uint32_t i = 0; i < breaker.config().failure_threshold;
           ++i) {
        breaker.RecordFailure(0, "pretrip");
      }
    }
    Result<engine::FleetQueryResult> result =
        engine::ExecuteOnFleet(fleet, spec, ExecutionTarget::kSmartSsd);
    fleet.ClearFaults();
    SMARTSSD_RETURN_IF_ERROR(result.status());
    if (result->degraded) {
      return InternalError(
          "fleet run degraded: every injected fault is recoverable, so "
          "no partition may go missing");
    }
    for (const engine::QueryStats& stats : result->partition_stats) {
      if (stats.fell_back) ++fallbacks_;
    }
    SMARTSSD_RETURN_IF_ERROR(CheckTraceInvariants(tracer));
    SMARTSSD_RETURN_IF_ERROR(CheckFleetInvariants(fleet));
    return FromFleet(config, result.value());
  }

  std::uint64_t seed_;
  HarnessOptions options_;
  SpecGenConfig gen_;
  std::unique_ptr<Database> db_ref_;
  std::unique_ptr<Database> db_ref_vec_;
  std::unique_ptr<Database> db_nsm_;
  std::unique_ptr<Database> db_pax_;
  std::unique_ptr<Database> db_spill2_;
  std::unique_ptr<Database> db_spill3_;
  std::unique_ptr<Database> db_split_;
  std::unique_ptr<Database> db_adapt_;
  std::unique_ptr<ParallelDatabase> par1_;
  std::unique_ptr<ParallelDatabase> par2_;
  std::unique_ptr<ParallelDatabase> par4_;
  std::unique_ptr<Fleet> fleet3_;
  std::unique_ptr<Fleet> fleet_het2_;
  std::unique_ptr<Database> db_gc_greedy_;
  std::unique_ptr<Database> db_gc_cb_;
  std::optional<TableOracle> oracle_;
  int next_write_index_ = 0;
  obs::Tracer tracer_gcg_;
  obs::Tracer tracer_gcc_;
  obs::Tracer tracer_ref_;
  obs::Tracer tracer_ref_vec_;
  obs::Tracer tracer_nsm_;
  obs::Tracer tracer_pax_;
  obs::Tracer tracer_spill2_;
  obs::Tracer tracer_spill3_;
  obs::Tracer tracer_split_;
  obs::Tracer tracer_adapt_;
  obs::Tracer tracer_fleet3_;
  obs::Tracer tracer_fleet2_;
  int executions_ = 0;
  int fallbacks_ = 0;
};

void RunOneSpec(DifferentialRunner& runner, std::uint64_t seed, int index,
                const SpecGenConfig& gen, const HarnessOptions& options,
                HarnessReport* report) {
  exec::QuerySpec spec = GenerateSpec(seed, index, gen);
  ++report->specs_run;
  auto failure = runner.CheckSpec(spec, index);
  if (!failure.has_value()) return;

  DifferentialFailure record;
  record.seed = seed;
  record.spec_index = index;
  record.config = failure->first;
  record.message = failure->second;
  record.spec_text = SpecToString(spec);
  record.replay = "replay: check::ReplaySpec(/*seed=*/" +
                  std::to_string(seed) + ", /*spec_index=*/" +
                  std::to_string(index) + ")";
  if (options.minimize_failures) {
    runner.Minimize(spec, index);
    record.minimized_spec_text = SpecToString(spec);
  } else {
    record.minimized_spec_text = record.spec_text;
  }
  report->failures.push_back(std::move(record));
}

}  // namespace

std::string HarnessReport::Summary() const {
  std::string out = "seed " + std::to_string(seed) + ": " +
                    std::to_string(specs_run) + " specs, " +
                    std::to_string(executions) + " executions (" +
                    std::to_string(fallbacks) + " host fallbacks), " +
                    std::to_string(failures.size()) + " failure(s)";
  for (const DifferentialFailure& failure : failures) {
    out += "\n  [" + failure.config + " @ spec " +
           std::to_string(failure.spec_index) + "] " + failure.message;
    out += "\n    spec:      " + failure.spec_text;
    out += "\n    minimized: " + failure.minimized_spec_text;
    out += "\n    " + failure.replay;
  }
  return out;
}

HarnessReport RunDifferentialSeed(std::uint64_t seed,
                                  const HarnessOptions& options) {
  HarnessReport report;
  report.seed = seed;
  DifferentialRunner runner(seed, options);
  SpecGenConfig gen = options.gen;
  gen.tables.seed = seed;
  for (int i = 0; i < options.specs_per_seed; ++i) {
    RunOneSpec(runner, seed, i, gen, options, &report);
  }
  report.executions = runner.executions();
  report.fallbacks = runner.fallbacks();
  return report;
}

HarnessReport ReplaySpec(std::uint64_t seed, int spec_index,
                         const HarnessOptions& options) {
  HarnessReport report;
  report.seed = seed;
  DifferentialRunner runner(seed, options);
  SpecGenConfig gen = options.gen;
  gen.tables.seed = seed;
  RunOneSpec(runner, seed, spec_index, gen, options, &report);
  report.executions = runner.executions();
  report.fallbacks = runner.fallbacks();
  return report;
}

}  // namespace smartssd::check
