#include "check/invariants.h"

#include <map>
#include <string>

namespace smartssd::check {

Status CheckTraceInvariants(const obs::Tracer& tracer) {
  if (tracer.open_spans() != 0) {
    return InternalError("trace invariant: " +
                         std::to_string(tracer.open_spans()) +
                         " span(s) left open after execution");
  }
  std::map<obs::TrackId, SimTime> last_instant;
  for (const obs::TraceEvent& event : tracer.events()) {
    if (event.track >= tracer.tracks().size()) {
      return InternalError("trace invariant: event '" + event.name +
                           "' on unregistered track " +
                           std::to_string(event.track));
    }
    if (event.phase == obs::TraceEvent::Phase::kSpan) {
      if (event.open()) {
        return InternalError("trace invariant: span '" + event.name +
                             "' never ended");
      }
      if (event.end < event.start) {
        return InternalError(
            "trace invariant: span '" + event.name + "' ends at " +
            std::to_string(event.end) + " before its start " +
            std::to_string(event.start));
      }
      continue;
    }
    // Instants on one lane must be recorded in virtual-time order; a
    // rewind means a stale or defaulted timestamp (the bug class of
    // RecordSuccess stamping "breaker close" at time 0).
    auto [it, inserted] = last_instant.emplace(event.track, event.start);
    if (!inserted) {
      if (event.start < it->second) {
        const obs::Track& track = tracer.tracks()[event.track];
        return InternalError(
            "trace invariant: instant '" + event.name + "' on " +
            track.process + "/" + track.thread + " at " +
            std::to_string(event.start) + " rewinds behind " +
            std::to_string(it->second));
      }
      it->second = event.start;
    }
  }
  return Status::OK();
}

Status CheckNoDeviceDramLeak(const engine::Database& db) {
  const ssd::SsdDevice* ssd = db.ssd();
  if (ssd == nullptr) return Status::OK();
  const std::uint64_t capacity = db.options().ssd.dram.capacity_bytes;
  if (ssd->device_dram_free() != capacity) {
    return InternalError(
        "device DRAM leak: " +
        std::to_string(capacity - ssd->device_dram_free()) +
        " bytes still allocated after execution");
  }
  if (ssd->spill_pages_held() != 0) {
    return InternalError(
        "spill extent leak: " + std::to_string(ssd->spill_pages_held()) +
        " logical page(s) still held after execution");
  }
  return Status::OK();
}

Status CheckBreakerSanity(const engine::DeviceCircuitBreaker& breaker) {
  using State = engine::DeviceCircuitBreaker::State;
  if (breaker.probe_in_flight() && breaker.state() != State::kHalfOpen) {
    return InternalError(std::string("breaker invariant: probe in flight "
                                     "while state is ") +
                         engine::BreakerStateName(breaker.state()));
  }
  if (breaker.trips() > breaker.total_failures()) {
    return InternalError("breaker invariant: " +
                         std::to_string(breaker.trips()) +
                         " trips exceed " +
                         std::to_string(breaker.total_failures()) +
                         " recorded failures");
  }
  if (breaker.state() == State::kOpen &&
      breaker.consecutive_failures() == 0) {
    return InternalError(
        "breaker invariant: open with zero consecutive failures");
  }
  return Status::OK();
}

Status CheckDatabaseInvariants(const engine::Database& db) {
  SMARTSSD_RETURN_IF_ERROR(CheckNoDeviceDramLeak(db));
  return CheckBreakerSanity(db.circuit_breaker());
}

Status CheckFleetInvariants(const engine::Fleet& fleet) {
  for (int d = 0; d < fleet.devices(); ++d) {
    const engine::Database& db = fleet.device(d);
    if (Status s = CheckDatabaseInvariants(db); !s.ok()) {
      return InternalError("fleet device " + std::to_string(d) + ": " +
                           std::string(s.message()));
    }
    // The runtime's own leak detector (armed whenever the live-session
    // count returns to zero) must agree — it also catches abandoned
    // hedge losers that failed to hand their grants back.
    const smart::SmartSsdRuntime* runtime = db.runtime();
    if (runtime != nullptr) {
      if (runtime->session_leak_detected()) {
        return InternalError("fleet device " + std::to_string(d) +
                             ": session grants leaked");
      }
      if (runtime->active_sessions() != 0) {
        return InternalError(
            "fleet device " + std::to_string(d) + ": " +
            std::to_string(runtime->active_sessions()) +
            " session(s) still active after the fleet drained");
      }
    }
  }
  return Status::OK();
}

}  // namespace smartssd::check
