#ifndef SMARTSSD_CHECK_RESULT_COMPARE_H_
#define SMARTSSD_CHECK_RESULT_COMPARE_H_

// Byte-exact comparison of query outputs across execution
// configurations. The engine's core promise (Section 4.1.2: both paths
// run the identical kernel over identical bytes) means any divergence —
// a different aggregate, a missing row, a reordered projection — is a
// bug, so the comparison is memcmp-strict and the error message decodes
// the first differing row for the human reading the failure.

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/executor.h"
#include "engine/fleet.h"
#include "engine/parallel.h"
#include "exec/cost_model.h"
#include "storage/schema.h"

namespace smartssd::check {

// One execution's observable output, normalized across the single-
// database and parallel entry points.
struct ExecutionOutput {
  std::string config;  // which configuration produced it
  storage::Schema schema;
  std::vector<std::byte> rows;
  std::vector<std::int64_t> aggs;
  // Operation counts drive the cost model, so kernel rewrites must keep
  // them stable too. Only populated by FromQuery (parallel runs shard
  // pages across workers, so per-worker counts are not comparable to a
  // single-database run).
  exec::OpCounts counts;

  std::uint64_t row_count() const {
    const std::uint32_t width = schema.tuple_size();
    return width == 0 ? 0 : rows.size() / width;
  }
};

ExecutionOutput FromQuery(std::string config,
                          const engine::QueryResult& result);
ExecutionOutput FromParallel(std::string config,
                             const engine::ParallelQueryResult& result);
ExecutionOutput FromFleet(std::string config,
                          const engine::FleetQueryResult& result);

// Renders one packed row of `schema` as "(v0, v1, ...)".
std::string RenderRow(const storage::Schema& schema, const std::byte* row);

// OK iff the outputs are byte-identical (schema widths, aggregate
// values, row bytes). The error message names both configs and the
// first point of divergence.
Status CompareOutputs(const ExecutionOutput& expected,
                      const ExecutionOutput& actual);

// OK iff the two executions charged identical operation counts. Only
// meaningful between configurations that see the same pages and tuples
// (same layout, no pruning differences) — e.g. the scalar and
// vectorized kernels over the same unpruned database.
Status CompareCounts(const ExecutionOutput& expected,
                     const ExecutionOutput& actual);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_RESULT_COMPARE_H_
