#include "check/result_compare.h"

#include <cstring>

#include "storage/tuple.h"

namespace smartssd::check {

ExecutionOutput FromQuery(std::string config,
                          const engine::QueryResult& result) {
  return ExecutionOutput{.config = std::move(config),
                         .schema = result.output_schema,
                         .rows = result.rows,
                         .aggs = result.agg_values};
}

ExecutionOutput FromParallel(std::string config,
                             const engine::ParallelQueryResult& result) {
  return ExecutionOutput{.config = std::move(config),
                         .schema = result.output_schema,
                         .rows = result.rows,
                         .aggs = result.agg_values};
}

std::string RenderRow(const storage::Schema& schema, const std::byte* row) {
  storage::TupleReader reader(&schema, row);
  std::string out = "(";
  for (int col = 0; col < schema.num_columns(); ++col) {
    if (col > 0) out += ", ";
    switch (schema.column(col).type) {
      case storage::ColumnType::kInt32:
        out += std::to_string(reader.GetInt32(col));
        break;
      case storage::ColumnType::kInt64:
        out += std::to_string(reader.GetInt64(col));
        break;
      case storage::ColumnType::kFixedChar:
        out += "'" + std::string(reader.GetChar(col)) + "'";
        break;
    }
  }
  out += ")";
  return out;
}

Status CompareOutputs(const ExecutionOutput& expected,
                      const ExecutionOutput& actual) {
  const std::string who =
      "[" + expected.config + " vs " + actual.config + "] ";
  if (expected.schema.tuple_size() != actual.schema.tuple_size()) {
    return InternalError(who + "output schemas differ: " +
                         std::to_string(expected.schema.tuple_size()) +
                         " vs " + std::to_string(actual.schema.tuple_size()) +
                         " bytes per row");
  }
  if (expected.aggs != actual.aggs) {
    for (std::size_t i = 0;
         i < std::max(expected.aggs.size(), actual.aggs.size()); ++i) {
      const bool both = i < expected.aggs.size() && i < actual.aggs.size();
      if (!both || expected.aggs[i] != actual.aggs[i]) {
        return InternalError(
            who + "aggregate " + std::to_string(i) + " differs: " +
            (i < expected.aggs.size() ? std::to_string(expected.aggs[i])
                                      : "<missing>") +
            " vs " +
            (i < actual.aggs.size() ? std::to_string(actual.aggs[i])
                                    : "<missing>"));
      }
    }
  }
  if (expected.row_count() != actual.row_count()) {
    return InternalError(who + "row counts differ: " +
                         std::to_string(expected.row_count()) + " vs " +
                         std::to_string(actual.row_count()));
  }
  if (expected.rows != actual.rows) {
    const std::uint32_t width = expected.schema.tuple_size();
    for (std::uint64_t r = 0; width != 0 && r < expected.row_count(); ++r) {
      const std::byte* a = expected.rows.data() + r * width;
      const std::byte* b = actual.rows.data() + r * width;
      if (std::memcmp(a, b, width) != 0) {
        return InternalError(who + "row " + std::to_string(r) +
                             " differs: " + RenderRow(expected.schema, a) +
                             " vs " + RenderRow(actual.schema, b));
      }
    }
    return InternalError(who + "row bytes differ");
  }
  return Status::OK();
}

}  // namespace smartssd::check
