#include "check/result_compare.h"

#include <cstring>

#include "storage/tuple.h"

namespace smartssd::check {

ExecutionOutput FromQuery(std::string config,
                          const engine::QueryResult& result) {
  return ExecutionOutput{.config = std::move(config),
                         .schema = result.output_schema,
                         .rows = result.rows,
                         .aggs = result.agg_values,
                         .counts = result.stats.counts};
}

ExecutionOutput FromParallel(std::string config,
                             const engine::ParallelQueryResult& result) {
  return ExecutionOutput{.config = std::move(config),
                         .schema = result.output_schema,
                         .rows = result.rows,
                         .aggs = result.agg_values};
}

ExecutionOutput FromFleet(std::string config,
                          const engine::FleetQueryResult& result) {
  return ExecutionOutput{.config = std::move(config),
                         .schema = result.output_schema,
                         .rows = result.rows,
                         .aggs = result.agg_values};
}

std::string RenderRow(const storage::Schema& schema, const std::byte* row) {
  storage::TupleReader reader(&schema, row);
  std::string out = "(";
  for (int col = 0; col < schema.num_columns(); ++col) {
    if (col > 0) out += ", ";
    switch (schema.column(col).type) {
      case storage::ColumnType::kInt32:
        out += std::to_string(reader.GetInt32(col));
        break;
      case storage::ColumnType::kInt64:
        out += std::to_string(reader.GetInt64(col));
        break;
      case storage::ColumnType::kFixedChar:
        out += "'" + std::string(reader.GetChar(col)) + "'";
        break;
    }
  }
  out += ")";
  return out;
}

Status CompareOutputs(const ExecutionOutput& expected,
                      const ExecutionOutput& actual) {
  const std::string who =
      "[" + expected.config + " vs " + actual.config + "] ";
  if (expected.schema.tuple_size() != actual.schema.tuple_size()) {
    return InternalError(who + "output schemas differ: " +
                         std::to_string(expected.schema.tuple_size()) +
                         " vs " + std::to_string(actual.schema.tuple_size()) +
                         " bytes per row");
  }
  if (expected.aggs != actual.aggs) {
    for (std::size_t i = 0;
         i < std::max(expected.aggs.size(), actual.aggs.size()); ++i) {
      const bool both = i < expected.aggs.size() && i < actual.aggs.size();
      if (!both || expected.aggs[i] != actual.aggs[i]) {
        return InternalError(
            who + "aggregate " + std::to_string(i) + " differs: " +
            (i < expected.aggs.size() ? std::to_string(expected.aggs[i])
                                      : "<missing>") +
            " vs " +
            (i < actual.aggs.size() ? std::to_string(actual.aggs[i])
                                    : "<missing>"));
      }
    }
  }
  if (expected.row_count() != actual.row_count()) {
    return InternalError(who + "row counts differ: " +
                         std::to_string(expected.row_count()) + " vs " +
                         std::to_string(actual.row_count()));
  }
  if (expected.rows != actual.rows) {
    const std::uint32_t width = expected.schema.tuple_size();
    for (std::uint64_t r = 0; width != 0 && r < expected.row_count(); ++r) {
      const std::byte* a = expected.rows.data() + r * width;
      const std::byte* b = actual.rows.data() + r * width;
      if (std::memcmp(a, b, width) != 0) {
        return InternalError(who + "row " + std::to_string(r) +
                             " differs: " + RenderRow(expected.schema, a) +
                             " vs " + RenderRow(actual.schema, b));
      }
    }
    return InternalError(who + "row bytes differ");
  }
  return Status::OK();
}

Status CompareCounts(const ExecutionOutput& expected,
                     const ExecutionOutput& actual) {
  if (expected.counts == actual.counts) return Status::OK();
  const std::string who =
      "[" + expected.config + " vs " + actual.config + "] ";
  const auto field = [&](const char* name, std::uint64_t a,
                         std::uint64_t b) -> std::string {
    if (a == b) return "";
    return who + "op count '" + name + "' differs: " + std::to_string(a) +
           " vs " + std::to_string(b);
  };
  const exec::OpCounts& e = expected.counts;
  const exec::OpCounts& o = actual.counts;
  for (const std::string& msg : {
           field("pages", e.pages, o.pages),
           field("tuples", e.tuples, o.tuples),
           field("probes", e.probes, o.probes),
           field("hash_inserts", e.hash_inserts, o.hash_inserts),
           field("output_tuples", e.output_tuples, o.output_tuples),
           field("output_bytes", e.output_bytes, o.output_bytes),
           field("agg_updates", e.agg_updates, o.agg_updates),
           field("group_updates", e.group_updates, o.group_updates),
           field("topn_updates", e.topn_updates, o.topn_updates),
           field("comparisons", e.eval.comparisons, o.eval.comparisons),
           field("arithmetic", e.eval.arithmetic, o.eval.arithmetic),
           field("column_reads", e.eval.column_reads, o.eval.column_reads),
           field("like_evals", e.eval.like_evals, o.eval.like_evals),
           field("case_evals", e.eval.case_evals, o.eval.case_evals),
       }) {
    if (!msg.empty()) return InternalError(msg);
  }
  return InternalError(who + "op counts differ");
}

}  // namespace smartssd::check
