#ifndef SMARTSSD_CHECK_INVARIANTS_H_
#define SMARTSSD_CHECK_INVARIANTS_H_

// Structural invariants checked after every harness execution, on top
// of the byte-identical-results comparison. These catch the class of
// bug that produces the right answer with corrupted bookkeeping: leaked
// trace spans, events stamped at impossible virtual times, device DRAM
// that is never returned, a breaker in a contradictory state.

#include "common/result.h"
#include "engine/circuit_breaker.h"
#include "engine/database.h"
#include "engine/fleet.h"
#include "obs/trace.h"

namespace smartssd::check {

// Every span is closed with start <= end, and each track's instant
// events appear in non-decreasing virtual-time order (the simulator is
// single-threaded, so a rewind on a lane means someone recorded an
// event with a stale or defaulted timestamp).
Status CheckTraceInvariants(const obs::Tracer& tracer);

// After a completed query every session's scratch allocations must be
// back: device DRAM free space equals the configured capacity.
Status CheckNoDeviceDramLeak(const engine::Database& db);

// The breaker's externally visible state is self-consistent.
Status CheckBreakerSanity(const engine::DeviceCircuitBreaker& breaker);

// All database-level invariants (DRAM + breaker) in one call.
Status CheckDatabaseInvariants(const engine::Database& db);

// Fleet-wide sweep: DRAM-leak, breaker-sanity, and session-leak checks
// on every device. The error message names the offending device. (Span
// balance across the fleet's device tracks is CheckTraceInvariants on
// the tracer the fleet was attached to — all devices share it.)
Status CheckFleetInvariants(const engine::Fleet& fleet);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_INVARIANTS_H_
