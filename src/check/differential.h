#ifndef SMARTSSD_CHECK_DIFFERENTIAL_H_
#define SMARTSSD_CHECK_DIFFERENTIAL_H_

// The differential correctness harness: seeded random query specs run
// through every execution configuration the engine offers —
//
//   * host scan (NSM, no zone map): the unpruned ground truth,
//   * host and pushdown over NSM and PAX with zone maps,
//   * pushdown under tiny join memory budgets (12 KiB and 4 KiB), so
//     joins run the hybrid spill path with 2 and 3 passes — results
//     AND OpCounts must match the unconstrained reference exactly,
//   * placement policies: split-scan execution (each eligible scan
//     fragments across host and device, partials merged — results AND
//     OpCounts must equal the unpruned monolithic reference) and
//     adaptive routing over PAX + zone map,
//   * ParallelDatabase with 1, 2, and 4 workers (pushdown),
//   * pushdown with an injected device fault (rotating fault kinds),
//     exercising retry, degraded host fallback, and the breaker —
//     including faults landing mid-spill,
//
// asserting byte-identical rows/aggregates against the ground truth
// plus structural invariants (trace span balance, monotone instants,
// no device-DRAM or spill-extent leaks, breaker-state sanity) after
// every execution.
//
// Determinism contract: RunDifferentialSeed(seed) is a pure function of
// (seed, options). Each spec within a seed is itself generated purely
// from (seed, index), so a failure is replayed by
// ReplaySpec(seed, index, options) — the one-line regression test a
// failure report prints.

#include <cstdint>
#include <string>
#include <vector>

#include "check/spec_gen.h"

namespace smartssd::check {

struct HarnessOptions {
  int specs_per_seed = 20;
  bool with_faults = true;
  // Write-phase axis: a pair of small write-path databases (one per GC
  // policy) absorbs a deterministic ingest/update batch before each
  // odd-indexed spec, is verified cell-exact against an in-memory
  // oracle, and then runs the spec on host and pushdown paths — all
  // four results must agree byte-for-byte, whatever the garbage
  // collector relocated underneath.
  bool with_write_phase = true;
  // Attempt component-dropping minimization of failing specs.
  bool minimize_failures = true;
  SpecGenConfig gen;
  // The pool is eagerly allocated per database and the harness holds
  // a dozen of them, so it runs with a deliberately small pool.
  std::uint64_t buffer_pool_pages = 192;
};

struct DifferentialFailure {
  std::uint64_t seed = 0;
  int spec_index = 0;
  std::string config;    // first configuration that diverged
  std::string message;   // what went wrong
  std::string spec_text; // the generated spec, as SpecToString
  std::string minimized_spec_text;  // after component dropping
  std::string replay;    // one-line reproducer
};

struct HarnessReport {
  std::uint64_t seed = 0;
  int specs_run = 0;
  int executions = 0;
  // Executions that survived an injected fault via degraded host
  // fallback — proof the fault matrix actually fired rather than
  // silently no-oping.
  int fallbacks = 0;
  std::vector<DifferentialFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

// Runs options.specs_per_seed specs for `seed` across the full
// configuration matrix.
HarnessReport RunDifferentialSeed(std::uint64_t seed,
                                  const HarnessOptions& options = {});

// Re-runs exactly one (seed, index) spec — the replay entry point.
HarnessReport ReplaySpec(std::uint64_t seed, int spec_index,
                         const HarnessOptions& options = {});

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_DIFFERENTIAL_H_
