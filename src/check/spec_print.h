#ifndef SMARTSSD_CHECK_SPEC_PRINT_H_
#define SMARTSSD_CHECK_SPEC_PRINT_H_

// Catalog-independent rendering of a QuerySpec, for failure reports and
// minimized reproducers. Unlike exec::PlanToString this never needs a
// Bind() to succeed, so it can print specs mid-minimization.

#include <string>

#include "exec/query_spec.h"

namespace smartssd::check {

std::string SpecToString(const exec::QuerySpec& spec);

}  // namespace smartssd::check

#endif  // SMARTSSD_CHECK_SPEC_PRINT_H_
