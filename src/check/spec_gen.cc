#include "check/spec_gen.h"

#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"

namespace smartssd::check {

namespace {

namespace ex = ::smartssd::expr;

constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

// Literals at representation and domain edges. kLt/kGt against the
// int64 extremes are exactly where a naive "literal minus one" range
// derivation wraps around — the zone-map path must not diverge there.
constexpr std::int64_t kBoundaryLiterals[] = {
    kInt64Min,     kInt64Min + 1, -1, 0, 1, kValueDomain - 1,
    kValueDomain, kInt64Max - 1, kInt64Max,
};

// A literal inside (or just past) the column's value domain.
std::int64_t DomainLiteral(Random& rng, int col,
                           const SpecGenConfig& config) {
  switch (col) {
    case 0:
      return rng.UniformInt(
          0, static_cast<std::int64_t>(config.tables.outer_rows));
    case 1:
      return rng.UniformInt(
          0, static_cast<std::int64_t>(config.tables.fk_domain()) + 1);
    case 2:
      return rng.UniformInt(0, kCatCardinality);
    case 7:
      return rng.UniformInt(0, kCat2Cardinality);
    default:
      // sel/v64/w64/v32 and the inner payload columns share [0, 2^30).
      return rng.UniformInt(0, kValueDomain);
  }
}

std::int64_t Literal(Random& rng, int col, const SpecGenConfig& config) {
  if (rng.Bernoulli(config.boundary_literal_probability)) {
    return kBoundaryLiterals[rng.Uniform(std::size(kBoundaryLiterals))];
  }
  return DomainLiteral(rng, col, config);
}

ex::ExprPtr RandomComparison(Random& rng, const std::vector<int>& cols,
                             const SpecGenConfig& config) {
  const int col = cols[rng.Uniform(cols.size())];
  const auto op = static_cast<ex::CompareOp>(rng.Uniform(6));
  ex::ExprPtr cmp =
      ex::Compare(op, ex::Col(col), ex::Lit(Literal(rng, col, config)));
  if (rng.Bernoulli(config.negate_probability)) cmp = ex::Not(std::move(cmp));
  return cmp;
}

// 1..4 comparisons joined by AND (70%) or OR; an AND sometimes gets a
// contradictory Eq pair appended, which a correct zone map turns into
// pruning every page while the unpruned reference still scans.
ex::ExprPtr RandomPredicate(Random& rng, const std::vector<int>& cols,
                            const SpecGenConfig& config) {
  const int terms = static_cast<int>(rng.Uniform(4)) + 1;
  std::vector<ex::ExprPtr> children;
  for (int i = 0; i < terms; ++i) {
    children.push_back(RandomComparison(rng, cols, config));
  }
  const bool conjunction = terms == 1 || rng.Bernoulli(0.7);
  if (conjunction && rng.Bernoulli(config.contradiction_probability)) {
    const int col = cols[rng.Uniform(cols.size())];
    const std::int64_t v = DomainLiteral(rng, col, config);
    children.push_back(ex::Eq(ex::Col(col), ex::Lit(v)));
    children.push_back(ex::Eq(ex::Col(col), ex::Lit(v + 1)));
  }
  if (children.size() == 1) return std::move(children[0]);
  return conjunction ? ex::And(std::move(children))
                     : ex::Or(std::move(children));
}

// An aggregate input over the combined row. Arithmetic literals stay
// tiny so INT64 accumulation over column values < 2^30 cannot overflow.
ex::ExprPtr RandomAggInput(Random& rng, const std::vector<int>& cols) {
  const int col = cols[rng.Uniform(cols.size())];
  const double shape = rng.NextDouble();
  if (shape < 0.5) return ex::Col(col);
  if (shape < 0.8) {
    return ex::Add(ex::Col(col), ex::Lit(rng.UniformInt(0, 99)));
  }
  if (shape < 0.9) {
    return ex::Mul(ex::Col(col), ex::Lit(rng.UniformInt(1, 8)));
  }
  const int other = cols[rng.Uniform(cols.size())];
  return ex::CaseWhen(
      ex::Lt(ex::Col(col), ex::Lit(rng.UniformInt(0, kValueDomain))),
      ex::Col(other), ex::Lit(rng.UniformInt(0, 50)));
}

exec::AggSpec RandomAgg(Random& rng, const std::vector<int>& cols, int i) {
  exec::AggSpec agg;
  agg.fn = static_cast<exec::AggSpec::Fn>(rng.Uniform(4));
  agg.name = "a" + std::to_string(i);
  if (agg.fn != exec::AggSpec::Fn::kCount || rng.Bernoulli(0.5)) {
    agg.input = RandomAggInput(rng, cols);
  }
  return agg;
}

}  // namespace

exec::QuerySpec GenerateSpec(std::uint64_t seed, int index,
                             const SpecGenConfig& config) {
  // Mix seed and index so spec i never depends on specs 0..i-1.
  Random rng(seed * 0x9E3779B97F4A7C15ULL +
             static_cast<std::uint64_t>(index) * 0x1000003ULL + 0xC0FFEE);

  exec::QuerySpec spec;
  spec.name = "diff_s" + std::to_string(seed) + "_q" + std::to_string(index);
  spec.table = kOuterTable;

  std::vector<int> outer_cols;
  for (int c = 0; c < kOuterColumns; ++c) outer_cols.push_back(c);
  std::vector<int> combined_cols = outer_cols;

  if (rng.Bernoulli(config.join_probability)) {
    exec::JoinSpec join;
    join.inner_table = kInnerTable;
    join.outer_key_col = 1;  // fk
    join.inner_key_col = 0;  // dk
    for (int payload = 1; payload < kInnerColumns; ++payload) {
      if (rng.Bernoulli(0.6)) {
        combined_cols.push_back(
            kOuterColumns + static_cast<int>(join.inner_payload_cols.size()));
        join.inner_payload_cols.push_back(payload);
      }
    }
    spec.join = std::move(join);
    if (rng.Bernoulli(config.probe_first_probability)) {
      spec.order = exec::PipelineOrder::kProbeFirst;
    }
  }

  // In filter-first order the predicate runs before the probe, so it
  // may only touch outer columns; probe-first sees the combined row.
  const std::vector<int>& predicate_cols =
      spec.order == exec::PipelineOrder::kProbeFirst ? combined_cols
                                                     : outer_cols;
  if (rng.Bernoulli(config.predicate_probability)) {
    spec.predicate = RandomPredicate(rng, predicate_cols, config);
  }

  switch (rng.Uniform(4)) {
    case 0: {  // scalar aggregates
      const int n = static_cast<int>(rng.Uniform(3)) + 1;
      for (int i = 0; i < n; ++i) {
        spec.aggregates.push_back(RandomAgg(rng, combined_cols, i));
      }
      break;
    }
    case 1: {  // grouped aggregates over the low-cardinality columns
      spec.group_by = rng.Bernoulli(0.5) ? std::vector<int>{2}
                                         : std::vector<int>{2, 7};
      const int n = static_cast<int>(rng.Uniform(2)) + 1;
      for (int i = 0; i < n; ++i) {
        spec.aggregates.push_back(RandomAgg(rng, combined_cols, i));
      }
      break;
    }
    case 2: {  // projection
      const int n = static_cast<int>(rng.Uniform(4)) + 1;
      for (int i = 0; i < n; ++i) {
        spec.projection.push_back(
            combined_cols[rng.Uniform(combined_cols.size())]);
      }
      break;
    }
    default: {  // top-N ordered by the unique row id (no tie ambiguity)
      spec.projection.push_back(0);
      const int extra = static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < extra; ++i) {
        spec.projection.push_back(
            combined_cols[rng.Uniform(combined_cols.size())]);
      }
      spec.top_n = exec::TopNSpec{
          .order_col = 0,
          .descending = rng.Bernoulli(0.5),
          .limit = static_cast<std::uint32_t>(rng.UniformInt(1, 50))};
      break;
    }
  }
  return spec;
}

}  // namespace smartssd::check
