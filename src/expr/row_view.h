#ifndef SMARTSSD_EXPR_ROW_VIEW_H_
#define SMARTSSD_EXPR_ROW_VIEW_H_

#include <cstring>

#include "expr/value.h"
#include "storage/pax_page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace smartssd::expr {

// Uniform column access over either layout, so one expression tree
// evaluates against NSM records and PAX minipages alike. The layout
// difference shows up in the *cost model* (cycles per access), not in
// correctness.
class RowView {
 public:
  virtual ~RowView() = default;
  virtual Value GetColumn(int col) const = 0;
};

// A row inside an NSM record.
class NsmRowView final : public RowView {
 public:
  NsmRowView(const storage::Schema* schema, const std::byte* tuple)
      : schema_(schema), tuple_(tuple) {}

  void Reset(const std::byte* tuple) { tuple_ = tuple; }

  Value GetColumn(int col) const override {
    const storage::TupleReader reader(schema_, tuple_);
    switch (schema_->column(col).type) {
      case storage::ColumnType::kInt32:
        return Value::Int(reader.GetInt32(col));
      case storage::ColumnType::kInt64:
        return Value::Int(reader.GetInt64(col));
      case storage::ColumnType::kFixedChar:
        return Value::String(reader.GetChar(col));
    }
    return Value::Null();
  }

 private:
  const storage::Schema* schema_;
  const std::byte* tuple_;
};

// A row inside a PAX page.
class PaxRowView final : public RowView {
 public:
  PaxRowView(const storage::Schema* schema,
             const storage::PaxPageReader* page, std::uint16_t row)
      : schema_(schema), page_(page), row_(row) {}

  void Reset(std::uint16_t row) { row_ = row; }

  Value GetColumn(int col) const override {
    const std::byte* p = page_->value(row_, col);
    switch (schema_->column(col).type) {
      case storage::ColumnType::kInt32: {
        std::int32_t v;
        std::memcpy(&v, p, sizeof(v));
        return Value::Int(v);
      }
      case storage::ColumnType::kInt64: {
        std::int64_t v;
        std::memcpy(&v, p, sizeof(v));
        return Value::Int(v);
      }
      case storage::ColumnType::kFixedChar:
        return Value::String(
            {reinterpret_cast<const char*>(p), schema_->column(col).width});
    }
    return Value::Null();
  }

 private:
  const storage::Schema* schema_;
  const storage::PaxPageReader* page_;
  std::uint16_t row_;
};

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_ROW_VIEW_H_
