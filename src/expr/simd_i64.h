#ifndef SMARTSSD_EXPR_SIMD_I64_H_
#define SMARTSSD_EXPR_SIMD_I64_H_

// AVX2+BMI2 int64 lanes for the batch kernel's hot loops: compare to a
// broadcast literal, compare two vectors, add/sub, contiguous column
// load, and in-place selection-vector compaction.
//
// Bit-exact contract: every routine produces byte-identical output to
// the corresponding scalar loop in batch.cc — signed 64-bit compares,
// sign-extending int32 widening, two's-complement wrapping add/sub, and
// left-packing compaction that preserves lane order. Boolean outputs
// are 0/1 bytes (never 0xFF), matching the scalar kernel; CompactSelAvx2
// depends on that invariant when it extracts one bit per byte with PEXT.
//
// The *Avx2 entry points are compiled with target("avx2","bmi2") and
// must only be called when expr::CurrentKernelIsa() == kAvx2. On
// non-x86 builds they fall back to the scalar loops so the translation
// unit still links (they are then unreachable: detection never selects
// kAvx2 there).

#include <cstddef>
#include <cstdint>

#include "expr/expression.h"

namespace smartssd::expr {

// out[i] = (a[i] cmp lit) ? 1 : 0.
void CmpI64VecLitAvx2(CompareOp op, const std::int64_t* a, std::int64_t lit,
                      std::uint8_t* out, std::size_t n);

// out[i] = (a[i] cmp b[i]) ? 1 : 0.
void CmpI64VecVecAvx2(CompareOp op, const std::int64_t* a,
                      const std::int64_t* b, std::uint8_t* out,
                      std::size_t n);

// Compacts `sel` in place, keeping lanes where (b8[i] != 0) == keep;
// returns the new length. Lane order is preserved.
std::size_t CompactSelAvx2(std::uint32_t* sel, const std::uint8_t* b8,
                           bool keep, std::size_t n);

// Loads n contiguous column values of `width` (4 or 8) bytes starting
// at `src`, sign-extending int32 to int64 for width 4.
void LoadI64ContigAvx2(const std::byte* src, std::uint32_t width,
                       std::int64_t* out, std::size_t n);

// Vector arithmetic; return false when `op` has no SIMD lane (mul has
// no 64-bit AVX2 multiply; div never compiles) so the caller falls back
// to the scalar loop.
bool ArithI64VecVecAvx2(ArithOp op, const std::int64_t* a,
                        const std::int64_t* b, std::int64_t* out,
                        std::size_t n);
bool ArithI64VecLitAvx2(ArithOp op, const std::int64_t* a, std::int64_t lit,
                        std::int64_t* out, std::size_t n);
bool ArithI64LitVecAvx2(ArithOp op, std::int64_t lit, const std::int64_t* b,
                        std::int64_t* out, std::size_t n);

// Rewrites `lit OP v` as `v OP' lit`: kLt<->kGt, kLe<->kGe, kEq/kNe
// unchanged. Same normalization Expression::AsColumnCompare applies.
CompareOp FlipCompare(CompareOp op);

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_SIMD_I64_H_
