#include "expr/kernel_isa.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace smartssd::expr {

namespace {

KernelIsa DetectFromCpu() {
#if defined(__x86_64__) || defined(_M_X64)
  // BMI2 is required alongside AVX2: selection compaction extracts its
  // lane mask with PEXT. Every AVX2 part (Haswell+, Zen+) has both.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2")) {
    return KernelIsa::kAvx2;
  }
#endif
  return KernelIsa::kScalarIsa;
}

KernelIsa InitialIsa() {
  if (const char* env = std::getenv("SMARTSSD_KERNEL_ISA")) {
    if (std::strcmp(env, "scalar") == 0) return KernelIsa::kScalarIsa;
    if (std::strcmp(env, "avx2") == 0) {
      // Honored only when the CPU actually has the lanes.
      return DetectFromCpu();
    }
    // Unknown value: ignore and auto-detect.
  }
  return DetectFromCpu();
}

std::atomic<KernelIsa>& Current() {
  static std::atomic<KernelIsa> isa{InitialIsa()};
  return isa;
}

}  // namespace

KernelIsa DetectKernelIsa() {
  static const KernelIsa isa = DetectFromCpu();
  return isa;
}

KernelIsa CurrentKernelIsa() {
  return Current().load(std::memory_order_relaxed);
}

KernelIsa SetKernelIsa(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2 && DetectKernelIsa() != KernelIsa::kAvx2) {
    isa = KernelIsa::kScalarIsa;
  }
  return Current().exchange(isa, std::memory_order_relaxed);
}

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalarIsa:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace smartssd::expr
