#ifndef SMARTSSD_EXPR_EXPRESSION_H_
#define SMARTSSD_EXPR_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "expr/row_view.h"
#include "expr/value.h"
#include "storage/schema.h"

namespace smartssd::expr {

class BatchProgram;

// Operation counts accumulated while evaluating expressions. The cost
// models (host Xeon vs. embedded ARM) convert these counts into cycles,
// so the *same interpreted evaluation* yields different virtual time on
// the two processors — the heart of the paper's CPU-saturation effect.
struct EvalStats {
  std::uint64_t comparisons = 0;
  std::uint64_t arithmetic = 0;
  std::uint64_t column_reads = 0;
  std::uint64_t like_evals = 0;
  std::uint64_t case_evals = 0;

  EvalStats& operator+=(const EvalStats& other) {
    comparisons += other.comparisons;
    arithmetic += other.arithmetic;
    column_reads += other.column_reads;
    like_evals += other.like_evals;
    case_evals += other.case_evals;
    return *this;
  }

  friend bool operator==(const EvalStats&, const EvalStats&) = default;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

// A "column <op> integer-literal" comparison, as recognized by the
// introspection API below. Zone-map pruning and the planner use these
// to derive per-column ranges from predicates.
struct ColumnCompare {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  std::int64_t literal = 0;
};

// Interpreted expression tree. Plans are typed when built: Validate()
// must pass against the input schema before Evaluate() is called, after
// which runtime type mismatches are programmer errors (CHECK).
class Expression {
 public:
  virtual ~Expression() = default;

  virtual Value Evaluate(const RowView& row, EvalStats* stats) const = 0;
  virtual Status Validate(const storage::Schema& schema) const = 0;
  // Appends the indexes of every column the expression reads.
  virtual void CollectColumns(std::vector<int>* columns) const = 0;
  // Adds the operation counts of one *full* evaluation (no
  // short-circuiting) — the planner's worst-case per-row estimate.
  virtual void EstimateOps(EvalStats* stats) const = 0;
  virtual std::string ToString() const = 0;

  // Appends this node's ops to `prog` and returns the slot holding its
  // result (see expr/batch.h). The default is kUnimplemented: any node
  // (or operand-type combination) the batch engine does not cover makes
  // the whole compilation fail, and the caller falls back to the
  // interpreted path.
  virtual Result<int> CompileBatch(BatchProgram* prog) const;

  // --- Structural introspection (for pruning/planning) ---

  // If this node is exactly "column <op> int-literal" (either operand
  // order; the op is normalized to column-on-the-left), returns it.
  virtual std::optional<ColumnCompare> AsColumnCompare() const {
    return std::nullopt;
  }
  // If this node is a conjunction (AND), returns its children.
  virtual const std::vector<std::unique_ptr<Expression>>* AsConjunction()
      const {
    return nullptr;
  }
  // If this node is a bare column reference, returns its index.
  virtual std::optional<int> AsColumnRef() const { return std::nullopt; }
  // If this node is an integer literal, returns its value.
  virtual std::optional<std::int64_t> AsIntLiteral() const {
    return std::nullopt;
  }
};

using ExprPtr = std::unique_ptr<Expression>;

// --- Factory functions (the public way to build expressions) ---

ExprPtr Col(int column);
ExprPtr Lit(std::int64_t value);
ExprPtr LitStr(std::string value);
ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
// Short-circuit conjunction/disjunction, left to right.
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr child);
// SQL LIKE 'prefix%' (the only LIKE shape the paper's queries use).
ExprPtr LikePrefix(ExprPtr input, std::string prefix);
// CASE WHEN cond THEN a ELSE b END.
ExprPtr CaseWhen(ExprPtr condition, ExprPtr then_value, ExprPtr else_value);

// Convenience comparison builders.
inline ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Compare(CompareOp::kEq, std::move(l), std::move(r));
}
inline ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Compare(CompareOp::kLt, std::move(l), std::move(r));
}
inline ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Compare(CompareOp::kLe, std::move(l), std::move(r));
}
inline ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Compare(CompareOp::kGt, std::move(l), std::move(r));
}
inline ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Compare(CompareOp::kGe, std::move(l), std::move(r));
}
inline ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kMul, std::move(l), std::move(r));
}
inline ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kSub, std::move(l), std::move(r));
}
inline ExprPtr Add(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kAdd, std::move(l), std::move(r));
}

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_EXPRESSION_H_
