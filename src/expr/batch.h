#ifndef SMARTSSD_EXPR_BATCH_H_
#define SMARTSSD_EXPR_BATCH_H_

// Vectorized (batch) expression evaluation.
//
// An Expression tree is compiled once — per query, not per row — into a
// flat sequence of BatchOps. Each op runs column-at-a-time over the rows
// named by a selection vector, so the per-row virtual dispatch and Value
// boxing of the interpreted Evaluate() path disappear from the hot loop.
//
// Count-identity contract: a compiled program charges *exactly* the
// EvalStats the interpreter would charge for the same rows, including
// the short-circuit behaviour of AND/OR and the branch-taken behaviour
// of CASE. Short-circuiting maps onto selection narrowing: a child of an
// AND only runs over the lanes every earlier child passed, which is
// row-for-row the set of rows the interpreter would have evaluated it
// on. This is what keeps the cost models — and therefore every
// virtual-time number — byte-identical across the two kernels.
//
// Not every tree compiles (e.g. mixed int/double CASE branches, string
// arithmetic). Compile() then fails with kUnimplemented and the caller
// falls back to the interpreted kernel, which remains the semantic
// reference.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "expr/expression.h"
#include "storage/schema.h"

namespace smartssd::expr {

// Physical access to one column of the current batch. Two shapes:
//  * strided — value i at `base + row * stride` (PAX minipages, where
//    the decode is nearly free),
//  * indirect — value at `row_ptrs[row] + offset` (NSM tuples gathered
//    once per page, and join-payload blobs resolved at probe time).
struct BatchColumn {
  storage::ColumnType type = storage::ColumnType::kInt32;
  std::uint32_t width = 0;
  const std::byte* base = nullptr;
  std::size_t stride = 0;
  const std::byte* const* row_ptrs = nullptr;
  std::uint32_t offset = 0;

  const std::byte* at(std::uint32_t row) const {
    return base != nullptr
               ? base + static_cast<std::size_t>(row) * stride
               : row_ptrs[row] + offset;
  }
};

// The columns visible to one batch evaluation, indexed by the same
// column ids the expression tree uses.
struct BatchInput {
  const BatchColumn* columns = nullptr;
  int num_columns = 0;
};

// Ascending row ids of the lanes still alive.
using SelVec = std::vector<std::uint32_t>;

// Static type of a value slot, fixed at compile time. The interpreter's
// per-row dynamic typing collapses to this because column types, literal
// types, and the promotion rules (any double operand or a division
// forces the double path) are all known from the tree.
enum class SlotType : std::uint8_t { kI64, kF64, kStr, kBool };

// One instruction of the flat kernel sequence.
struct BatchOp {
  enum class Code : std::uint8_t {
    kLoadI64,      // col -> dst          (counts one column_read per lane)
    kLoadStr,      // col -> dst          (counts one column_read per lane)
    kCmpI,         // a cmp b -> dst      (counts one comparison per lane)
    kCmpD,
    kCmpS,
    kArithI,       // a op b -> dst       (counts one arithmetic per lane)
    kArithD,
    kCastI2D,      // a -> dst            (free, like Value::AsDouble)
    kNot,          // !a -> dst
    kLike,         // a starts-with strings[lit] -> dst (one like_eval/lane)
    kCaseMark,     // counts one case_eval per lane
    kSelSave,      // push a copy of the current selection
    kSelNarrow,    // keep lanes where bool slot a == flag
    kSelPop,       // restore the saved selection
    kBoolFromSel,  // dst (over saved sel) = lane survived, XOR flag; pops
    kMerge,        // dst = a(cond) ? b-stream : c-stream, zipped in order
  };
  Code code = Code::kLoadI64;
  std::uint8_t flag = 0;
  CompareOp cmp = CompareOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  int col = -1;
  int a = -1;
  int b = -1;
  int c = -1;
  int dst = -1;
  int lit = -1;  // string-pool index (kLike prefix)
};

struct SlotInfo {
  SlotType type = SlotType::kI64;
  bool uniform = false;    // one value per batch instead of one per lane
  bool literal = false;    // uniform whose value is a compile-time constant
  std::int64_t lit_i64 = 0;
  int lit_str = -1;  // string-pool index
};

// Builder/container for a compiled kernel. Expression nodes append their
// ops via Expression::CompileBatch and return the slot holding their
// result.
class BatchProgram {
 public:
  explicit BatchProgram(const storage::Schema* schema) : schema_(schema) {}

  const storage::Schema& schema() const { return *schema_; }

  int AddSlot(SlotType type, bool uniform = false) {
    slots_.push_back(SlotInfo{.type = type, .uniform = uniform});
    return static_cast<int>(slots_.size()) - 1;
  }
  int AddLiteralI64(std::int64_t value) {
    slots_.push_back(SlotInfo{.type = SlotType::kI64,
                              .uniform = true,
                              .literal = true,
                              .lit_i64 = value});
    return static_cast<int>(slots_.size()) - 1;
  }
  int AddLiteralStr(std::string value) {
    const int pool = AddString(std::move(value));
    slots_.push_back(SlotInfo{.type = SlotType::kStr,
                              .uniform = true,
                              .literal = true,
                              .lit_str = pool});
    return static_cast<int>(slots_.size()) - 1;
  }
  int AddString(std::string value) {
    strings_.push_back(std::move(value));
    return static_cast<int>(strings_.size()) - 1;
  }
  void Emit(const BatchOp& op) { ops_.push_back(op); }

  const SlotInfo& slot(int i) const {
    return slots_[static_cast<std::size_t>(i)];
  }
  int num_slots() const { return static_cast<int>(slots_.size()); }
  const std::vector<BatchOp>& ops() const { return ops_; }
  std::string_view string(int i) const {
    return strings_[static_cast<std::size_t>(i)];
  }

 private:
  const storage::Schema* schema_;
  std::vector<BatchOp> ops_;
  std::vector<SlotInfo> slots_;
  std::vector<std::string> strings_;
};

// Reusable evaluation state (slot storage, selection stack). Owned by
// the caller and shared across pages — and across the several compiled
// expressions of one query — so the steady state allocates nothing.
class BatchScratch {
 public:
  BatchScratch() = default;

 private:
  friend class CompiledExpr;

  struct Slot {
    std::vector<std::int64_t> i64;
    std::vector<double> f64;
    std::vector<std::string_view> str;
    std::vector<std::uint8_t> b8;
    std::int64_t u_i64 = 0;
    double u_f64 = 0;
    std::string_view u_str;
    std::uint8_t u_b8 = 0;
  };

  std::vector<Slot> slots_;
  std::vector<SelVec> sel_stack_;
  std::size_t sel_depth_ = 0;
  SelVec cur_;
  std::vector<std::int64_t> broadcast_;
};

// A compiled expression: the flat op sequence plus its result slot.
class CompiledExpr {
 public:
  // Compiles `root` against `schema` (the combined-row schema the tree's
  // column ids index into). Fails — kUnimplemented / kInvalidArgument —
  // on shapes the batch engine does not cover; callers fall back to the
  // interpreter.
  static Result<CompiledExpr> Compile(const Expression& root,
                                      const storage::Schema& schema);

  SlotType result_type() const { return result_type_; }

  // Predicate evaluation: removes the lanes of `sel` where the (BOOL)
  // expression is false. Charges exactly the interpreter's EvalStats.
  void Filter(const BatchInput& in, SelVec* sel, BatchScratch* scratch,
              EvalStats* stats) const;

  // Evaluates an INT64-typed expression for every lane of `sel`. The
  // returned span (one value per lane, in lane order) lives in `scratch`
  // and is valid until the next evaluation using the same scratch.
  std::span<const std::int64_t> EvalI64(const BatchInput& in,
                                        const SelVec& sel,
                                        BatchScratch* scratch,
                                        EvalStats* stats) const;

 private:
  CompiledExpr(BatchProgram prog, int root, SlotType type)
      : prog_(std::move(prog)), root_(root), result_type_(type) {}

  // Executes the op sequence over scratch->cur_.
  void Run(const BatchInput& in, BatchScratch* scratch,
           EvalStats* stats) const;

  BatchProgram prog_;
  int root_ = -1;
  SlotType result_type_ = SlotType::kBool;
};

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_BATCH_H_
