#include "expr/expression.h"

#include <utility>

#include "expr/batch.h"

namespace smartssd::expr {

namespace {

// Inserts a (free) int→double cast op unless the slot is already a
// double — the batch analogue of Value::AsDouble promotion.
int CastToF64(BatchProgram* prog, int slot) {
  if (prog->slot(slot).type == SlotType::kF64) return slot;
  BatchOp op;
  op.code = BatchOp::Code::kCastI2D;
  op.a = slot;
  op.dst = prog->AddSlot(SlotType::kF64, prog->slot(slot).uniform);
  prog->Emit(op);
  return op.dst;
}

bool IsNumeric(SlotType t) {
  return t == SlotType::kI64 || t == SlotType::kF64;
}

// Compares two values of the same family; strings compare
// lexicographically (fixed CHARs are space-padded, so padding is
// order-neutral for equal-width operands).
int CompareValues(const Value& a, const Value& b) {
  if (a.type() == Value::Type::kString) {
    SMARTSSD_CHECK(b.type() == Value::Type::kString);
    return a.AsString().compare(b.AsString());
  }
  if (a.type() == Value::Type::kDouble || b.type() == Value::Type::kDouble) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const std::int64_t x = a.AsInt();
  const std::int64_t y = b.AsInt();
  return x < y ? -1 : (x > y ? 1 : 0);
}

class ColumnExpr final : public Expression {
 public:
  explicit ColumnExpr(int column) : column_(column) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    ++stats->column_reads;
    return row.GetColumn(column_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (column_ < 0 || column_ >= schema.num_columns()) {
      return InvalidArgumentError("column index out of range");
    }
    return Status::OK();
  }

  void CollectColumns(std::vector<int>* columns) const override {
    columns->push_back(column_);
  }

  void EstimateOps(EvalStats* stats) const override {
    ++stats->column_reads;
  }

  std::optional<int> AsColumnRef() const override { return column_; }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    if (column_ < 0 || column_ >= prog->schema().num_columns()) {
      return InvalidArgumentError("column index out of range");
    }
    BatchOp op;
    op.col = column_;
    switch (prog->schema().column(column_).type) {
      case storage::ColumnType::kInt32:
      case storage::ColumnType::kInt64:
        op.code = BatchOp::Code::kLoadI64;
        op.dst = prog->AddSlot(SlotType::kI64);
        break;
      case storage::ColumnType::kFixedChar:
        op.code = BatchOp::Code::kLoadStr;
        op.dst = prog->AddSlot(SlotType::kStr);
        break;
    }
    prog->Emit(op);
    return op.dst;
  }

  std::string ToString() const override {
    return "$" + std::to_string(column_);
  }

 private:
  int column_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(std::int64_t v) : int_value_(v), is_string_(false) {}
  explicit LiteralExpr(std::string s)
      : string_value_(std::move(s)), is_string_(true) {}

  Value Evaluate(const RowView&, EvalStats*) const override {
    return is_string_ ? Value::String(string_value_)
                      : Value::Int(int_value_);
  }

  Status Validate(const storage::Schema&) const override {
    return Status::OK();
  }

  void CollectColumns(std::vector<int>*) const override {}

  void EstimateOps(EvalStats*) const override {}

  std::optional<std::int64_t> AsIntLiteral() const override {
    if (is_string_) return std::nullopt;
    return int_value_;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    return is_string_ ? prog->AddLiteralStr(string_value_)
                      : prog->AddLiteralI64(int_value_);
  }

  std::string ToString() const override {
    return is_string_ ? "'" + string_value_ + "'"
                      : std::to_string(int_value_);
  }

 private:
  std::int64_t int_value_ = 0;
  std::string string_value_;
  bool is_string_;
};

class CompareExpr final : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value l = lhs_->Evaluate(row, stats);
    const Value r = rhs_->Evaluate(row, stats);
    ++stats->comparisons;
    const int c = CompareValues(l, r);
    switch (op_) {
      case CompareOp::kEq:
        return Value::Bool(c == 0);
      case CompareOp::kNe:
        return Value::Bool(c != 0);
      case CompareOp::kLt:
        return Value::Bool(c < 0);
      case CompareOp::kLe:
        return Value::Bool(c <= 0);
      case CompareOp::kGt:
        return Value::Bool(c > 0);
      case CompareOp::kGe:
        return Value::Bool(c >= 0);
    }
    return Value::Bool(false);
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    lhs_->CollectColumns(columns);
    rhs_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    lhs_->EstimateOps(stats);
    rhs_->EstimateOps(stats);
    ++stats->comparisons;
  }

  std::optional<ColumnCompare> AsColumnCompare() const override {
    const auto lhs_col = lhs_->AsColumnRef();
    const auto rhs_lit = rhs_->AsIntLiteral();
    if (lhs_col.has_value() && rhs_lit.has_value()) {
      return ColumnCompare{*lhs_col, op_, *rhs_lit};
    }
    const auto lhs_lit = lhs_->AsIntLiteral();
    const auto rhs_col = rhs_->AsColumnRef();
    if (lhs_lit.has_value() && rhs_col.has_value()) {
      // Normalize "lit OP col" to "col OP' lit".
      CompareOp flipped = op_;
      switch (op_) {
        case CompareOp::kLt:
          flipped = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          flipped = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          flipped = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          flipped = CompareOp::kLe;
          break;
        case CompareOp::kEq:
        case CompareOp::kNe:
          break;
      }
      return ColumnCompare{*rhs_col, flipped, *lhs_lit};
    }
    return std::nullopt;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    SMARTSSD_ASSIGN_OR_RETURN(int a, lhs_->CompileBatch(prog));
    SMARTSSD_ASSIGN_OR_RETURN(int b, rhs_->CompileBatch(prog));
    const SlotType ta = prog->slot(a).type;
    const SlotType tb = prog->slot(b).type;
    BatchOp op;
    op.cmp = op_;
    if (ta == SlotType::kStr && tb == SlotType::kStr) {
      op.code = BatchOp::Code::kCmpS;
    } else if (IsNumeric(ta) && IsNumeric(tb)) {
      if (ta == SlotType::kF64 || tb == SlotType::kF64) {
        a = CastToF64(prog, a);
        b = CastToF64(prog, b);
        op.code = BatchOp::Code::kCmpD;
      } else {
        op.code = BatchOp::Code::kCmpI;
      }
    } else {
      return UnimplementedError("batch compare on mixed operand types");
    }
    op.a = a;
    op.b = b;
    op.dst = prog->AddSlot(
        SlotType::kBool, prog->slot(a).uniform && prog->slot(b).uniform);
    prog->Emit(op);
    return op.dst;
  }

  std::string ToString() const override {
    static constexpr const char* kNames[] = {"=", "<>", "<", "<=", ">",
                                             ">="};
    return "(" + lhs_->ToString() + " " +
           kNames[static_cast<int>(op_)] + " " + rhs_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class ArithExpr final : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value l = lhs_->Evaluate(row, stats);
    const Value r = rhs_->Evaluate(row, stats);
    ++stats->arithmetic;
    if (l.type() == Value::Type::kDouble ||
        r.type() == Value::Type::kDouble || op_ == ArithOp::kDiv) {
      const double x = l.AsDouble();
      const double y = r.AsDouble();
      switch (op_) {
        case ArithOp::kAdd:
          return Value::Double(x + y);
        case ArithOp::kSub:
          return Value::Double(x - y);
        case ArithOp::kMul:
          return Value::Double(x * y);
        case ArithOp::kDiv:
          return Value::Double(y == 0 ? 0 : x / y);
      }
    }
    const std::int64_t x = l.AsInt();
    const std::int64_t y = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      case ArithOp::kDiv:
        return Value::Int(y == 0 ? 0 : x / y);
    }
    return Value::Null();
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    lhs_->CollectColumns(columns);
    rhs_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    lhs_->EstimateOps(stats);
    rhs_->EstimateOps(stats);
    ++stats->arithmetic;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    SMARTSSD_ASSIGN_OR_RETURN(int a, lhs_->CompileBatch(prog));
    SMARTSSD_ASSIGN_OR_RETURN(int b, rhs_->CompileBatch(prog));
    if (!IsNumeric(prog->slot(a).type) || !IsNumeric(prog->slot(b).type)) {
      return UnimplementedError("batch arithmetic on non-numeric operand");
    }
    BatchOp op;
    op.arith = op_;
    const bool uniform = prog->slot(a).uniform && prog->slot(b).uniform;
    // Division always takes the double path, exactly like the
    // interpreter.
    if (prog->slot(a).type == SlotType::kF64 ||
        prog->slot(b).type == SlotType::kF64 || op_ == ArithOp::kDiv) {
      op.code = BatchOp::Code::kArithD;
      op.a = CastToF64(prog, a);
      op.b = CastToF64(prog, b);
      op.dst = prog->AddSlot(SlotType::kF64, uniform);
    } else {
      op.code = BatchOp::Code::kArithI;
      op.a = a;
      op.b = b;
      op.dst = prog->AddSlot(SlotType::kI64, uniform);
    }
    prog->Emit(op);
    return op.dst;
  }

  std::string ToString() const override {
    static constexpr const char* kNames[] = {"+", "-", "*", "/"};
    return "(" + lhs_->ToString() + " " +
           kNames[static_cast<int>(op_)] + " " + rhs_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicExpr final : public Expression {
 public:
  LogicExpr(bool is_and, std::vector<ExprPtr> children)
      : is_and_(is_and), children_(std::move(children)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    // Short-circuit, left to right: the count of comparisons actually
    // executed is what the cost model charges, which is why predicate
    // order matters to the simulated elapsed time just as it did on the
    // real device.
    for (const ExprPtr& child : children_) {
      const bool b = child->Evaluate(row, stats).AsBool();
      if (is_and_ && !b) return Value::Bool(false);
      if (!is_and_ && b) return Value::Bool(true);
    }
    return Value::Bool(is_and_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (children_.empty()) {
      return InvalidArgumentError("AND/OR needs at least one operand");
    }
    for (const ExprPtr& child : children_) {
      SMARTSSD_RETURN_IF_ERROR(child->Validate(schema));
    }
    return Status::OK();
  }

  void CollectColumns(std::vector<int>* columns) const override {
    for (const ExprPtr& child : children_) child->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    for (const ExprPtr& child : children_) child->EstimateOps(stats);
  }

  const std::vector<ExprPtr>* AsConjunction() const override {
    return is_and_ ? &children_ : nullptr;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    if (children_.empty()) {
      return InvalidArgumentError("AND/OR needs at least one operand");
    }
    // Child k runs over exactly the lanes where every earlier child left
    // the outcome undecided (true-so-far for AND, false-so-far for OR):
    // selection narrowing IS short-circuiting, lane for lane, which is
    // what keeps the charged EvalStats identical to the interpreter.
    SMARTSSD_ASSIGN_OR_RETURN(int b0, children_[0]->CompileBatch(prog));
    if (prog->slot(b0).type != SlotType::kBool) {
      return UnimplementedError("batch AND/OR over non-boolean child");
    }
    if (children_.size() == 1) return b0;
    const std::uint8_t keep = is_and_ ? 1 : 0;
    BatchOp save;
    save.code = BatchOp::Code::kSelSave;
    prog->Emit(save);
    BatchOp narrow;
    narrow.code = BatchOp::Code::kSelNarrow;
    narrow.flag = keep;
    narrow.a = b0;
    prog->Emit(narrow);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      SMARTSSD_ASSIGN_OR_RETURN(int bi, children_[i]->CompileBatch(prog));
      if (prog->slot(bi).type != SlotType::kBool) {
        return UnimplementedError("batch AND/OR over non-boolean child");
      }
      narrow.a = bi;
      prog->Emit(narrow);
    }
    BatchOp fold;
    fold.code = BatchOp::Code::kBoolFromSel;
    fold.flag = is_and_ ? 0 : 1;  // surviving lanes are false for OR
    fold.dst = prog->AddSlot(SlotType::kBool);
    prog->Emit(fold);
    return fold.dst;
  }

  std::string ToString() const override {
    std::string out = "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += is_and_ ? " AND " : " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  bool is_and_;
  std::vector<ExprPtr> children_;
};

class NotExpr final : public Expression {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    return Value::Bool(!child_->Evaluate(row, stats).AsBool());
  }

  Status Validate(const storage::Schema& schema) const override {
    return child_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    child_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    child_->EstimateOps(stats);
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    SMARTSSD_ASSIGN_OR_RETURN(const int a, child_->CompileBatch(prog));
    if (prog->slot(a).type != SlotType::kBool) {
      return UnimplementedError("batch NOT over non-boolean child");
    }
    BatchOp op;
    op.code = BatchOp::Code::kNot;
    op.a = a;
    op.dst = prog->AddSlot(SlotType::kBool, prog->slot(a).uniform);
    prog->Emit(op);
    return op.dst;
  }

  std::string ToString() const override {
    return "(NOT " + child_->ToString() + ")";
  }

 private:
  ExprPtr child_;
};

class LikePrefixExpr final : public Expression {
 public:
  LikePrefixExpr(ExprPtr input, std::string prefix)
      : input_(std::move(input)), prefix_(std::move(prefix)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value v = input_->Evaluate(row, stats);
    ++stats->like_evals;
    const std::string_view s = v.AsString();
    return Value::Bool(s.substr(0, prefix_.size()) == prefix_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (prefix_.empty()) {
      return InvalidArgumentError("LIKE prefix must not be empty");
    }
    return input_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    input_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    input_->EstimateOps(stats);
    ++stats->like_evals;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    SMARTSSD_ASSIGN_OR_RETURN(const int a, input_->CompileBatch(prog));
    if (prog->slot(a).type != SlotType::kStr) {
      return UnimplementedError("batch LIKE over non-string input");
    }
    BatchOp op;
    op.code = BatchOp::Code::kLike;
    op.a = a;
    op.lit = prog->AddString(prefix_);
    op.dst = prog->AddSlot(SlotType::kBool, prog->slot(a).uniform);
    prog->Emit(op);
    return op.dst;
  }

  std::string ToString() const override {
    return "(" + input_->ToString() + " LIKE '" + prefix_ + "%')";
  }

 private:
  ExprPtr input_;
  std::string prefix_;
};

class CaseWhenExpr final : public Expression {
 public:
  CaseWhenExpr(ExprPtr condition, ExprPtr then_value, ExprPtr else_value)
      : condition_(std::move(condition)),
        then_(std::move(then_value)),
        else_(std::move(else_value)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    ++stats->case_evals;
    if (condition_->Evaluate(row, stats).AsBool()) {
      return then_->Evaluate(row, stats);
    }
    return else_->Evaluate(row, stats);
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(condition_->Validate(schema));
    SMARTSSD_RETURN_IF_ERROR(then_->Validate(schema));
    return else_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    condition_->CollectColumns(columns);
    then_->CollectColumns(columns);
    else_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    condition_->EstimateOps(stats);
    then_->EstimateOps(stats);
    else_->EstimateOps(stats);
    ++stats->case_evals;
  }

  Result<int> CompileBatch(BatchProgram* prog) const override {
    // The interpreter counts the case_eval before touching the
    // condition, so the mark comes first.
    BatchOp mark;
    mark.code = BatchOp::Code::kCaseMark;
    prog->Emit(mark);
    SMARTSSD_ASSIGN_OR_RETURN(const int b, condition_->CompileBatch(prog));
    if (prog->slot(b).type != SlotType::kBool) {
      return UnimplementedError("batch CASE over non-boolean condition");
    }
    // Each branch runs only over its partition of the selection — the
    // rows the interpreter would have taken that branch for.
    BatchOp save;
    save.code = BatchOp::Code::kSelSave;
    BatchOp narrow;
    narrow.code = BatchOp::Code::kSelNarrow;
    narrow.a = b;
    BatchOp pop;
    pop.code = BatchOp::Code::kSelPop;

    prog->Emit(save);
    narrow.flag = 1;
    prog->Emit(narrow);
    SMARTSSD_ASSIGN_OR_RETURN(const int t, then_->CompileBatch(prog));
    prog->Emit(pop);

    prog->Emit(save);
    narrow.flag = 0;
    prog->Emit(narrow);
    SMARTSSD_ASSIGN_OR_RETURN(const int e, else_->CompileBatch(prog));
    prog->Emit(pop);

    if (prog->slot(t).type != prog->slot(e).type) {
      // A row-dependent result type; the interpreter's dynamic typing
      // handles it, the static batch engine does not.
      return UnimplementedError("batch CASE with mixed branch types");
    }
    BatchOp merge;
    merge.code = BatchOp::Code::kMerge;
    merge.a = b;
    merge.b = t;
    merge.c = e;
    merge.dst = prog->AddSlot(prog->slot(t).type,
                              prog->slot(b).uniform &&
                                  prog->slot(t).uniform &&
                                  prog->slot(e).uniform);
    prog->Emit(merge);
    return merge.dst;
  }

  std::string ToString() const override {
    return "CASE WHEN " + condition_->ToString() + " THEN " +
           then_->ToString() + " ELSE " + else_->ToString() + " END";
  }

 private:
  ExprPtr condition_;
  ExprPtr then_;
  ExprPtr else_;
};

}  // namespace

Result<int> Expression::CompileBatch(BatchProgram*) const {
  return UnimplementedError("expression not supported by batch kernel");
}

ExprPtr Col(int column) { return std::make_unique<ColumnExpr>(column); }

ExprPtr Lit(std::int64_t value) {
  return std::make_unique<LiteralExpr>(value);
}

ExprPtr LitStr(std::string value) {
  return std::make_unique<LiteralExpr>(std::move(value));
}

ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<CompareExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr And(std::vector<ExprPtr> children) {
  return std::make_unique<LogicExpr>(true, std::move(children));
}

ExprPtr Or(std::vector<ExprPtr> children) {
  return std::make_unique<LogicExpr>(false, std::move(children));
}

ExprPtr Not(ExprPtr child) {
  return std::make_unique<NotExpr>(std::move(child));
}

ExprPtr LikePrefix(ExprPtr input, std::string prefix) {
  return std::make_unique<LikePrefixExpr>(std::move(input),
                                          std::move(prefix));
}

ExprPtr CaseWhen(ExprPtr condition, ExprPtr then_value, ExprPtr else_value) {
  return std::make_unique<CaseWhenExpr>(
      std::move(condition), std::move(then_value), std::move(else_value));
}

}  // namespace smartssd::expr
