#include "expr/expression.h"

#include <utility>

namespace smartssd::expr {

namespace {

// Compares two values of the same family; strings compare
// lexicographically (fixed CHARs are space-padded, so padding is
// order-neutral for equal-width operands).
int CompareValues(const Value& a, const Value& b) {
  if (a.type() == Value::Type::kString) {
    SMARTSSD_CHECK(b.type() == Value::Type::kString);
    return a.AsString().compare(b.AsString());
  }
  if (a.type() == Value::Type::kDouble || b.type() == Value::Type::kDouble) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const std::int64_t x = a.AsInt();
  const std::int64_t y = b.AsInt();
  return x < y ? -1 : (x > y ? 1 : 0);
}

class ColumnExpr final : public Expression {
 public:
  explicit ColumnExpr(int column) : column_(column) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    ++stats->column_reads;
    return row.GetColumn(column_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (column_ < 0 || column_ >= schema.num_columns()) {
      return InvalidArgumentError("column index out of range");
    }
    return Status::OK();
  }

  void CollectColumns(std::vector<int>* columns) const override {
    columns->push_back(column_);
  }

  void EstimateOps(EvalStats* stats) const override {
    ++stats->column_reads;
  }

  std::optional<int> AsColumnRef() const override { return column_; }

  std::string ToString() const override {
    return "$" + std::to_string(column_);
  }

 private:
  int column_;
};

class LiteralExpr final : public Expression {
 public:
  explicit LiteralExpr(std::int64_t v) : int_value_(v), is_string_(false) {}
  explicit LiteralExpr(std::string s)
      : string_value_(std::move(s)), is_string_(true) {}

  Value Evaluate(const RowView&, EvalStats*) const override {
    return is_string_ ? Value::String(string_value_)
                      : Value::Int(int_value_);
  }

  Status Validate(const storage::Schema&) const override {
    return Status::OK();
  }

  void CollectColumns(std::vector<int>*) const override {}

  void EstimateOps(EvalStats*) const override {}

  std::optional<std::int64_t> AsIntLiteral() const override {
    if (is_string_) return std::nullopt;
    return int_value_;
  }

  std::string ToString() const override {
    return is_string_ ? "'" + string_value_ + "'"
                      : std::to_string(int_value_);
  }

 private:
  std::int64_t int_value_ = 0;
  std::string string_value_;
  bool is_string_;
};

class CompareExpr final : public Expression {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value l = lhs_->Evaluate(row, stats);
    const Value r = rhs_->Evaluate(row, stats);
    ++stats->comparisons;
    const int c = CompareValues(l, r);
    switch (op_) {
      case CompareOp::kEq:
        return Value::Bool(c == 0);
      case CompareOp::kNe:
        return Value::Bool(c != 0);
      case CompareOp::kLt:
        return Value::Bool(c < 0);
      case CompareOp::kLe:
        return Value::Bool(c <= 0);
      case CompareOp::kGt:
        return Value::Bool(c > 0);
      case CompareOp::kGe:
        return Value::Bool(c >= 0);
    }
    return Value::Bool(false);
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    lhs_->CollectColumns(columns);
    rhs_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    lhs_->EstimateOps(stats);
    rhs_->EstimateOps(stats);
    ++stats->comparisons;
  }

  std::optional<ColumnCompare> AsColumnCompare() const override {
    const auto lhs_col = lhs_->AsColumnRef();
    const auto rhs_lit = rhs_->AsIntLiteral();
    if (lhs_col.has_value() && rhs_lit.has_value()) {
      return ColumnCompare{*lhs_col, op_, *rhs_lit};
    }
    const auto lhs_lit = lhs_->AsIntLiteral();
    const auto rhs_col = rhs_->AsColumnRef();
    if (lhs_lit.has_value() && rhs_col.has_value()) {
      // Normalize "lit OP col" to "col OP' lit".
      CompareOp flipped = op_;
      switch (op_) {
        case CompareOp::kLt:
          flipped = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          flipped = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          flipped = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          flipped = CompareOp::kLe;
          break;
        case CompareOp::kEq:
        case CompareOp::kNe:
          break;
      }
      return ColumnCompare{*rhs_col, flipped, *lhs_lit};
    }
    return std::nullopt;
  }

  std::string ToString() const override {
    static constexpr const char* kNames[] = {"=", "<>", "<", "<=", ">",
                                             ">="};
    return "(" + lhs_->ToString() + " " +
           kNames[static_cast<int>(op_)] + " " + rhs_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class ArithExpr final : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value l = lhs_->Evaluate(row, stats);
    const Value r = rhs_->Evaluate(row, stats);
    ++stats->arithmetic;
    if (l.type() == Value::Type::kDouble ||
        r.type() == Value::Type::kDouble || op_ == ArithOp::kDiv) {
      const double x = l.AsDouble();
      const double y = r.AsDouble();
      switch (op_) {
        case ArithOp::kAdd:
          return Value::Double(x + y);
        case ArithOp::kSub:
          return Value::Double(x - y);
        case ArithOp::kMul:
          return Value::Double(x * y);
        case ArithOp::kDiv:
          return Value::Double(y == 0 ? 0 : x / y);
      }
    }
    const std::int64_t x = l.AsInt();
    const std::int64_t y = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(x + y);
      case ArithOp::kSub:
        return Value::Int(x - y);
      case ArithOp::kMul:
        return Value::Int(x * y);
      case ArithOp::kDiv:
        return Value::Int(y == 0 ? 0 : x / y);
    }
    return Value::Null();
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(lhs_->Validate(schema));
    return rhs_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    lhs_->CollectColumns(columns);
    rhs_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    lhs_->EstimateOps(stats);
    rhs_->EstimateOps(stats);
    ++stats->arithmetic;
  }

  std::string ToString() const override {
    static constexpr const char* kNames[] = {"+", "-", "*", "/"};
    return "(" + lhs_->ToString() + " " +
           kNames[static_cast<int>(op_)] + " " + rhs_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicExpr final : public Expression {
 public:
  LogicExpr(bool is_and, std::vector<ExprPtr> children)
      : is_and_(is_and), children_(std::move(children)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    // Short-circuit, left to right: the count of comparisons actually
    // executed is what the cost model charges, which is why predicate
    // order matters to the simulated elapsed time just as it did on the
    // real device.
    for (const ExprPtr& child : children_) {
      const bool b = child->Evaluate(row, stats).AsBool();
      if (is_and_ && !b) return Value::Bool(false);
      if (!is_and_ && b) return Value::Bool(true);
    }
    return Value::Bool(is_and_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (children_.empty()) {
      return InvalidArgumentError("AND/OR needs at least one operand");
    }
    for (const ExprPtr& child : children_) {
      SMARTSSD_RETURN_IF_ERROR(child->Validate(schema));
    }
    return Status::OK();
  }

  void CollectColumns(std::vector<int>* columns) const override {
    for (const ExprPtr& child : children_) child->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    for (const ExprPtr& child : children_) child->EstimateOps(stats);
  }

  const std::vector<ExprPtr>* AsConjunction() const override {
    return is_and_ ? &children_ : nullptr;
  }

  std::string ToString() const override {
    std::string out = "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += is_and_ ? " AND " : " OR ";
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  bool is_and_;
  std::vector<ExprPtr> children_;
};

class NotExpr final : public Expression {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    return Value::Bool(!child_->Evaluate(row, stats).AsBool());
  }

  Status Validate(const storage::Schema& schema) const override {
    return child_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    child_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    child_->EstimateOps(stats);
  }

  std::string ToString() const override {
    return "(NOT " + child_->ToString() + ")";
  }

 private:
  ExprPtr child_;
};

class LikePrefixExpr final : public Expression {
 public:
  LikePrefixExpr(ExprPtr input, std::string prefix)
      : input_(std::move(input)), prefix_(std::move(prefix)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    const Value v = input_->Evaluate(row, stats);
    ++stats->like_evals;
    const std::string_view s = v.AsString();
    return Value::Bool(s.substr(0, prefix_.size()) == prefix_);
  }

  Status Validate(const storage::Schema& schema) const override {
    if (prefix_.empty()) {
      return InvalidArgumentError("LIKE prefix must not be empty");
    }
    return input_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    input_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    input_->EstimateOps(stats);
    ++stats->like_evals;
  }

  std::string ToString() const override {
    return "(" + input_->ToString() + " LIKE '" + prefix_ + "%')";
  }

 private:
  ExprPtr input_;
  std::string prefix_;
};

class CaseWhenExpr final : public Expression {
 public:
  CaseWhenExpr(ExprPtr condition, ExprPtr then_value, ExprPtr else_value)
      : condition_(std::move(condition)),
        then_(std::move(then_value)),
        else_(std::move(else_value)) {}

  Value Evaluate(const RowView& row, EvalStats* stats) const override {
    ++stats->case_evals;
    if (condition_->Evaluate(row, stats).AsBool()) {
      return then_->Evaluate(row, stats);
    }
    return else_->Evaluate(row, stats);
  }

  Status Validate(const storage::Schema& schema) const override {
    SMARTSSD_RETURN_IF_ERROR(condition_->Validate(schema));
    SMARTSSD_RETURN_IF_ERROR(then_->Validate(schema));
    return else_->Validate(schema);
  }

  void CollectColumns(std::vector<int>* columns) const override {
    condition_->CollectColumns(columns);
    then_->CollectColumns(columns);
    else_->CollectColumns(columns);
  }

  void EstimateOps(EvalStats* stats) const override {
    condition_->EstimateOps(stats);
    then_->EstimateOps(stats);
    else_->EstimateOps(stats);
    ++stats->case_evals;
  }

  std::string ToString() const override {
    return "CASE WHEN " + condition_->ToString() + " THEN " +
           then_->ToString() + " ELSE " + else_->ToString() + " END";
  }

 private:
  ExprPtr condition_;
  ExprPtr then_;
  ExprPtr else_;
};

}  // namespace

ExprPtr Col(int column) { return std::make_unique<ColumnExpr>(column); }

ExprPtr Lit(std::int64_t value) {
  return std::make_unique<LiteralExpr>(value);
}

ExprPtr LitStr(std::string value) {
  return std::make_unique<LiteralExpr>(std::move(value));
}

ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<CompareExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr And(std::vector<ExprPtr> children) {
  return std::make_unique<LogicExpr>(true, std::move(children));
}

ExprPtr Or(std::vector<ExprPtr> children) {
  return std::make_unique<LogicExpr>(false, std::move(children));
}

ExprPtr Not(ExprPtr child) {
  return std::make_unique<NotExpr>(std::move(child));
}

ExprPtr LikePrefix(ExprPtr input, std::string prefix) {
  return std::make_unique<LikePrefixExpr>(std::move(input),
                                          std::move(prefix));
}

ExprPtr CaseWhen(ExprPtr condition, ExprPtr then_value, ExprPtr else_value) {
  return std::make_unique<CaseWhenExpr>(
      std::move(condition), std::move(then_value), std::move(else_value));
}

}  // namespace smartssd::expr
