#include "expr/batch.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"
#include "expr/kernel_isa.h"
#include "expr/simd_i64.h"

namespace smartssd::expr {

namespace {

// Scalar comparison kernels shared by the uniform paths. Semantics match
// the interpreter's CompareValues + op dispatch exactly.
template <typename T>
bool CmpScalar(CompareOp op, const T& x, const T& y) {
  switch (op) {
    case CompareOp::kEq:
      return x == y;
    case CompareOp::kNe:
      return x != y;
    case CompareOp::kLt:
      return x < y;
    case CompareOp::kLe:
      return x <= y;
    case CompareOp::kGt:
      return x > y;
    case CompareOp::kGe:
      return x >= y;
  }
  return false;
}

bool CmpStr(CompareOp op, std::string_view x, std::string_view y) {
  const int c = x.compare(y);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::int64_t ArithScalarI(ArithOp op, std::int64_t x, std::int64_t y) {
  switch (op) {
    case ArithOp::kAdd:
      return x + y;
    case ArithOp::kSub:
      return x - y;
    case ArithOp::kMul:
      return x * y;
    case ArithOp::kDiv:
      break;  // integer division never compiles: kDiv forces the double path
  }
  SMARTSSD_CHECK(false);
  return 0;
}

double ArithScalarD(ArithOp op, double x, double y) {
  switch (op) {
    case ArithOp::kAdd:
      return x + y;
    case ArithOp::kSub:
      return x - y;
    case ArithOp::kMul:
      return x * y;
    case ArithOp::kDiv:
      return y == 0 ? 0 : x / y;
  }
  return 0;
}

bool LikeScalar(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

Result<CompiledExpr> CompiledExpr::Compile(const Expression& root,
                                           const storage::Schema& schema) {
  BatchProgram prog(&schema);
  SMARTSSD_ASSIGN_OR_RETURN(const int slot, root.CompileBatch(&prog));
  const SlotType type = prog.slot(slot).type;
  return CompiledExpr(std::move(prog), slot, type);
}

void CompiledExpr::Run(const BatchInput& in, BatchScratch* scratch,
                       EvalStats* stats) const {
  scratch->slots_.resize(static_cast<std::size_t>(prog_.num_slots()));
  // Literal slots carry their value straight from the program; doing it
  // every Run keeps the scratch shareable between compiled expressions.
  for (int s = 0; s < prog_.num_slots(); ++s) {
    const SlotInfo& info = prog_.slot(s);
    if (!info.literal) continue;
    BatchScratch::Slot& slot = scratch->slots_[static_cast<std::size_t>(s)];
    if (info.type == SlotType::kI64) {
      slot.u_i64 = info.lit_i64;
    } else {
      slot.u_str = prog_.string(info.lit_str);
    }
  }

  SelVec& cur = scratch->cur_;
  std::size_t& depth = scratch->sel_depth_;
  depth = 0;
  // One relaxed load per batch; the SIMD lanes are bit-exact drop-ins
  // for the scalar loops, so this choice never changes slot contents.
  const KernelIsa isa = CurrentKernelIsa();

  for (const BatchOp& op : prog_.ops()) {
    const std::size_t n = cur.size();
    const std::uint32_t* sel = cur.data();
    switch (op.code) {
      case BatchOp::Code::kLoadI64: {
        const BatchColumn& col = in.columns[op.col];
        auto& out = scratch->slots_[static_cast<std::size_t>(op.dst)].i64;
        out.resize(n);
        stats->column_reads += n;
        // Dense strided gather (all-pass pages, unfiltered loads over a
        // packed PAX minipage) is a contiguous copy. `sel` is ascending
        // and unique, so span == count implies consecutive row ids.
        if (isa == KernelIsa::kAvx2 && n > 0 && col.base != nullptr &&
            col.stride == col.width &&
            static_cast<std::size_t>(sel[n - 1] - sel[0]) + 1 == n) {
          LoadI64ContigAvx2(
              col.base + static_cast<std::size_t>(sel[0]) * col.stride,
              col.width, out.data(), n);
          break;
        }
        auto load = [&](auto addr) {
          if (col.width == 4) {
            for (std::size_t i = 0; i < n; ++i) {
              std::int32_t v;
              std::memcpy(&v, addr(sel[i]), sizeof(v));
              out[i] = v;
            }
          } else {
            for (std::size_t i = 0; i < n; ++i) {
              std::int64_t v;
              std::memcpy(&v, addr(sel[i]), sizeof(v));
              out[i] = v;
            }
          }
        };
        if (col.base != nullptr) {
          const std::byte* base = col.base;
          const std::size_t stride = col.stride;
          load([base, stride](std::uint32_t row) {
            return base + static_cast<std::size_t>(row) * stride;
          });
        } else {
          const std::byte* const* rows = col.row_ptrs;
          const std::uint32_t offset = col.offset;
          load([rows, offset](std::uint32_t row) {
            return rows[row] + offset;
          });
        }
        break;
      }
      case BatchOp::Code::kLoadStr: {
        const BatchColumn& col = in.columns[op.col];
        auto& out = scratch->slots_[static_cast<std::size_t>(op.dst)].str;
        out.resize(n);
        stats->column_reads += n;
        const std::size_t width = col.width;
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = std::string_view(
              reinterpret_cast<const char*>(col.at(sel[i])), width);
        }
        break;
      }
      case BatchOp::Code::kCmpI:
      case BatchOp::Code::kCmpD: {
        stats->comparisons += n;
        const bool is_d = op.code == BatchOp::Code::kCmpD;
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sb =
            scratch->slots_[static_cast<std::size_t>(op.b)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool ua = prog_.slot(op.a).uniform;
        const bool ub = prog_.slot(op.b).uniform;
        if (!is_d && isa == KernelIsa::kAvx2 && !(ua && ub)) {
          sd.b8.resize(n);
          std::uint8_t* o = sd.b8.data();
          if (ua) {
            // uniform OP v[i]  ==  v[i] FLIP(OP) uniform.
            CmpI64VecLitAvx2(FlipCompare(op.cmp), sb.i64.data(), sa.u_i64, o,
                             n);
          } else if (ub) {
            CmpI64VecLitAvx2(op.cmp, sa.i64.data(), sb.u_i64, o, n);
          } else {
            CmpI64VecVecAvx2(op.cmp, sa.i64.data(), sb.i64.data(), o, n);
          }
          break;
        }
        // Typed once at the top, so the uniform/vector combinations all
        // compare operands of the same type.
        auto run_typed = [&](const auto& va, auto uax, const auto& vb,
                             auto ubx) {
          if (ua && ub) {
            sd.u_b8 = CmpScalar(op.cmp, uax, ubx) ? 1 : 0;
            return;
          }
          sd.b8.resize(n);
          std::uint8_t* o = sd.b8.data();
          auto loop = [&](auto ga, auto gb) {
            switch (op.cmp) {
              case CompareOp::kEq:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) == gb(i);
                break;
              case CompareOp::kNe:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) != gb(i);
                break;
              case CompareOp::kLt:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) < gb(i);
                break;
              case CompareOp::kLe:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) <= gb(i);
                break;
              case CompareOp::kGt:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) > gb(i);
                break;
              case CompareOp::kGe:
                for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) >= gb(i);
                break;
            }
          };
          const auto* av = va.data();
          const auto* bv = vb.data();
          if (ua) {
            loop([uax](std::size_t) { return uax; },
                 [bv](std::size_t i) { return bv[i]; });
          } else if (ub) {
            loop([av](std::size_t i) { return av[i]; },
                 [ubx](std::size_t) { return ubx; });
          } else {
            loop([av](std::size_t i) { return av[i]; },
                 [bv](std::size_t i) { return bv[i]; });
          }
        };
        if (is_d) {
          run_typed(sa.f64, sa.u_f64, sb.f64, sb.u_f64);
        } else {
          run_typed(sa.i64, sa.u_i64, sb.i64, sb.u_i64);
        }
        break;
      }
      case BatchOp::Code::kCmpS: {
        stats->comparisons += n;
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sb =
            scratch->slots_[static_cast<std::size_t>(op.b)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool ua = prog_.slot(op.a).uniform;
        const bool ub = prog_.slot(op.b).uniform;
        auto ga = [&](std::size_t i) { return ua ? sa.u_str : sa.str[i]; };
        auto gb = [&](std::size_t i) { return ub ? sb.u_str : sb.str[i]; };
        if (ua && ub) {
          sd.u_b8 = CmpStr(op.cmp, sa.u_str, sb.u_str) ? 1 : 0;
          break;
        }
        sd.b8.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sd.b8[i] = CmpStr(op.cmp, ga(i), gb(i)) ? 1 : 0;
        }
        break;
      }
      case BatchOp::Code::kArithI: {
        stats->arithmetic += n;
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sb =
            scratch->slots_[static_cast<std::size_t>(op.b)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool ua = prog_.slot(op.a).uniform;
        const bool ub = prog_.slot(op.b).uniform;
        if (ua && ub) {
          sd.u_i64 = ArithScalarI(op.arith, sa.u_i64, sb.u_i64);
          break;
        }
        sd.i64.resize(n);
        std::int64_t* o = sd.i64.data();
        if (isa == KernelIsa::kAvx2) {
          const bool done =
              ua ? ArithI64LitVecAvx2(op.arith, sa.u_i64, sb.i64.data(), o, n)
              : ub ? ArithI64VecLitAvx2(op.arith, sa.i64.data(), sb.u_i64, o,
                                        n)
                   : ArithI64VecVecAvx2(op.arith, sa.i64.data(),
                                        sb.i64.data(), o, n);
          if (done) break;  // kMul has no 64-bit AVX2 lane; fall through.
        }
        auto run = [&](auto ga, auto gb) {
          switch (op.arith) {
            case ArithOp::kAdd:
              for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) + gb(i);
              break;
            case ArithOp::kSub:
              for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) - gb(i);
              break;
            case ArithOp::kMul:
              for (std::size_t i = 0; i < n; ++i) o[i] = ga(i) * gb(i);
              break;
            case ArithOp::kDiv:
              SMARTSSD_CHECK(false);
              break;
          }
        };
        if (ua) {
          const std::int64_t x = sa.u_i64;
          const std::int64_t* bv = sb.i64.data();
          run([x](std::size_t) { return x; },
              [bv](std::size_t i) { return bv[i]; });
        } else if (ub) {
          const std::int64_t* av = sa.i64.data();
          const std::int64_t y = sb.u_i64;
          run([av](std::size_t i) { return av[i]; },
              [y](std::size_t) { return y; });
        } else {
          const std::int64_t* av = sa.i64.data();
          const std::int64_t* bv = sb.i64.data();
          run([av](std::size_t i) { return av[i]; },
              [bv](std::size_t i) { return bv[i]; });
        }
        break;
      }
      case BatchOp::Code::kArithD: {
        stats->arithmetic += n;
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sb =
            scratch->slots_[static_cast<std::size_t>(op.b)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool ua = prog_.slot(op.a).uniform;
        const bool ub = prog_.slot(op.b).uniform;
        auto ga = [&](std::size_t i) { return ua ? sa.u_f64 : sa.f64[i]; };
        auto gb = [&](std::size_t i) { return ub ? sb.u_f64 : sb.f64[i]; };
        if (ua && ub) {
          sd.u_f64 = ArithScalarD(op.arith, sa.u_f64, sb.u_f64);
          break;
        }
        sd.f64.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sd.f64[i] = ArithScalarD(op.arith, ga(i), gb(i));
        }
        break;
      }
      case BatchOp::Code::kCastI2D: {
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        if (prog_.slot(op.a).uniform) {
          sd.u_f64 = static_cast<double>(sa.u_i64);
          break;
        }
        sd.f64.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sd.f64[i] = static_cast<double>(sa.i64[i]);
        }
        break;
      }
      case BatchOp::Code::kNot: {
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        if (prog_.slot(op.a).uniform) {
          sd.u_b8 = sa.u_b8 == 0 ? 1 : 0;
          break;
        }
        sd.b8.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sd.b8[i] = sa.b8[i] == 0 ? 1 : 0;
        }
        break;
      }
      case BatchOp::Code::kLike: {
        stats->like_evals += n;
        const std::string_view prefix = prog_.string(op.lit);
        BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        if (prog_.slot(op.a).uniform) {
          sd.u_b8 = LikeScalar(sa.u_str, prefix) ? 1 : 0;
          break;
        }
        sd.b8.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          sd.b8[i] = LikeScalar(sa.str[i], prefix) ? 1 : 0;
        }
        break;
      }
      case BatchOp::Code::kCaseMark:
        stats->case_evals += n;
        break;
      case BatchOp::Code::kSelSave: {
        if (scratch->sel_stack_.size() <= depth) {
          scratch->sel_stack_.emplace_back();
        }
        scratch->sel_stack_[depth].assign(cur.begin(), cur.end());
        ++depth;
        break;
      }
      case BatchOp::Code::kSelNarrow: {
        const BatchScratch::Slot& sa =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        const bool keep = op.flag != 0;
        if (prog_.slot(op.a).uniform) {
          if ((sa.u_b8 != 0) != keep) cur.clear();
          break;
        }
        const std::uint8_t* bv = sa.b8.data();
        if (isa == KernelIsa::kAvx2) {
          cur.resize(CompactSelAvx2(cur.data(), bv, keep, n));
          break;
        }
        std::size_t w = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if ((bv[i] != 0) == keep) cur[w++] = cur[i];
        }
        cur.resize(w);
        break;
      }
      case BatchOp::Code::kSelPop: {
        SMARTSSD_CHECK(depth > 0);
        std::swap(cur, scratch->sel_stack_[depth - 1]);
        --depth;
        break;
      }
      case BatchOp::Code::kBoolFromSel: {
        SMARTSSD_CHECK(depth > 0);
        SelVec& saved = scratch->sel_stack_[depth - 1];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool invert = op.flag != 0;
        sd.b8.resize(saved.size());
        // `cur` is an ordered subset of `saved`: one forward walk marks
        // the survivors.
        std::size_t j = 0;
        for (std::size_t i = 0; i < saved.size(); ++i) {
          const bool member = j < cur.size() && cur[j] == saved[i];
          if (member) ++j;
          sd.b8[i] = (member != invert) ? 1 : 0;
        }
        std::swap(cur, saved);
        --depth;
        break;
      }
      case BatchOp::Code::kMerge: {
        BatchScratch::Slot& sc =
            scratch->slots_[static_cast<std::size_t>(op.a)];
        BatchScratch::Slot& st =
            scratch->slots_[static_cast<std::size_t>(op.b)];
        BatchScratch::Slot& se =
            scratch->slots_[static_cast<std::size_t>(op.c)];
        BatchScratch::Slot& sd =
            scratch->slots_[static_cast<std::size_t>(op.dst)];
        const bool uc = prog_.slot(op.a).uniform;
        const bool ut = prog_.slot(op.b).uniform;
        const bool ue = prog_.slot(op.c).uniform;
        auto cond = [&](std::size_t i) {
          return (uc ? sc.u_b8 : sc.b8[i]) != 0;
        };
        if (prog_.slot(op.dst).uniform) {
          // All three operands uniform: one scalar pick.
          switch (prog_.slot(op.dst).type) {
            case SlotType::kI64:
              sd.u_i64 = cond(0) ? st.u_i64 : se.u_i64;
              break;
            case SlotType::kF64:
              sd.u_f64 = cond(0) ? st.u_f64 : se.u_f64;
              break;
            case SlotType::kStr:
              sd.u_str = cond(0) ? st.u_str : se.u_str;
              break;
            case SlotType::kBool:
              sd.u_b8 = cond(0) ? st.u_b8 : se.u_b8;
              break;
          }
          break;
        }
        // Branch outputs are dense streams over the lanes that took the
        // branch; zipping by the condition restores lane order.
        std::size_t jt = 0;
        std::size_t je = 0;
        switch (prog_.slot(op.dst).type) {
          case SlotType::kI64: {
            sd.i64.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
              sd.i64[i] = cond(i) ? (ut ? st.u_i64 : st.i64[jt++])
                                  : (ue ? se.u_i64 : se.i64[je++]);
            }
            break;
          }
          case SlotType::kF64: {
            sd.f64.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
              sd.f64[i] = cond(i) ? (ut ? st.u_f64 : st.f64[jt++])
                                  : (ue ? se.u_f64 : se.f64[je++]);
            }
            break;
          }
          case SlotType::kStr: {
            sd.str.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
              sd.str[i] = cond(i) ? (ut ? st.u_str : st.str[jt++])
                                  : (ue ? se.u_str : se.str[je++]);
            }
            break;
          }
          case SlotType::kBool: {
            sd.b8.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
              sd.b8[i] = cond(i) ? (ut ? st.u_b8 : st.b8[jt++])
                                 : (ue ? se.u_b8 : se.b8[je++]);
            }
            break;
          }
        }
        break;
      }
    }
  }
  SMARTSSD_CHECK_EQ(depth, 0u);
}

void CompiledExpr::Filter(const BatchInput& in, SelVec* sel,
                          BatchScratch* scratch, EvalStats* stats) const {
  SMARTSSD_CHECK(result_type_ == SlotType::kBool);
  if (sel->empty()) {
    // Nothing to evaluate: the interpreter would not have charged a
    // thing either, so skip the op walk entirely.
    return;
  }
  std::swap(scratch->cur_, *sel);
  Run(in, scratch, stats);
  std::swap(scratch->cur_, *sel);
  const BatchScratch::Slot& root =
      scratch->slots_[static_cast<std::size_t>(root_)];
  if (prog_.slot(root_).uniform) {
    if (root.u_b8 == 0) sel->clear();
    return;
  }
  const std::uint8_t* bv = root.b8.data();
  if (CurrentKernelIsa() == KernelIsa::kAvx2) {
    sel->resize(CompactSelAvx2(sel->data(), bv, /*keep=*/true, sel->size()));
    return;
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < sel->size(); ++i) {
    if (bv[i] != 0) (*sel)[w++] = (*sel)[i];
  }
  sel->resize(w);
}

std::span<const std::int64_t> CompiledExpr::EvalI64(
    const BatchInput& in, const SelVec& sel, BatchScratch* scratch,
    EvalStats* stats) const {
  SMARTSSD_CHECK(result_type_ == SlotType::kI64);
  if (sel.empty()) return {};
  scratch->cur_.assign(sel.begin(), sel.end());
  Run(in, scratch, stats);
  const BatchScratch::Slot& root =
      scratch->slots_[static_cast<std::size_t>(root_)];
  if (prog_.slot(root_).uniform) {
    scratch->broadcast_.assign(sel.size(), root.u_i64);
    return scratch->broadcast_;
  }
  return root.i64;
}

}  // namespace smartssd::expr
