#include "expr/simd_i64.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SMARTSSD_HAVE_AVX2_LANES 1
#else
#define SMARTSSD_HAVE_AVX2_LANES 0
#endif

namespace smartssd::expr {

namespace {

// Scalar reference used for loop tails (and the whole body on non-x86
// builds). Must match batch.cc's CmpScalar<std::int64_t> exactly.
bool CmpI64Scalar(CompareOp op, std::int64_t x, std::int64_t y) {
  switch (op) {
    case CompareOp::kEq:
      return x == y;
    case CompareOp::kNe:
      return x != y;
    case CompareOp::kLt:
      return x < y;
    case CompareOp::kLe:
      return x <= y;
    case CompareOp::kGt:
      return x > y;
    case CompareOp::kGe:
      return x >= y;
  }
  return false;
}

#if SMARTSSD_HAVE_AVX2_LANES

// AVX2 has signed compares for == and > only; the six operators reduce
// to three combine shapes plus an optional lane-mask inversion.
enum class Combine { kEq, kGt, kGe };

struct CmpMode {
  Combine comb;
  bool invert;
};

CmpMode ModeFor(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return {Combine::kEq, false};
    case CompareOp::kNe:
      return {Combine::kEq, true};
    case CompareOp::kGt:
      return {Combine::kGt, false};
    case CompareOp::kLe:
      return {Combine::kGt, true};
    case CompareOp::kGe:
      return {Combine::kGe, false};
    case CompareOp::kLt:
      return {Combine::kGe, true};
  }
  return {Combine::kEq, false};
}

// 4-bit lane mask -> four 0/1 output bytes (little-endian: byte j is
// lane j). Keeps the boolean-slot encoding identical to the scalar
// kernel, which writes 0/1, not 0xFF.
constexpr std::uint32_t kMask4[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

// 8-bit survivor mask -> permutation that left-packs the surviving
// 32-bit lanes of a YMM register. 8 KiB, built at compile time.
struct PermTable {
  alignas(32) std::uint32_t idx[256][8];
};

constexpr PermTable MakePermTable() {
  PermTable t{};
  for (int m = 0; m < 256; ++m) {
    int w = 0;
    for (int b = 0; b < 8; ++b) {
      if ((m >> b) & 1) t.idx[m][w++] = static_cast<std::uint32_t>(b);
    }
    for (; w < 8; ++w) t.idx[m][w] = 0;
  }
  return t;
}

constexpr PermTable kPerm = MakePermTable();

#endif  // SMARTSSD_HAVE_AVX2_LANES

}  // namespace

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      break;
  }
  return op;
}

#if SMARTSSD_HAVE_AVX2_LANES

__attribute__((target("avx2,bmi2"))) void CmpI64VecLitAvx2(
    CompareOp op, const std::int64_t* a, std::int64_t lit, std::uint8_t* out,
    std::size_t n) {
  const CmpMode mode = ModeFor(op);
  const unsigned inv = mode.invert ? 0xFu : 0u;
  const __m256i vb = _mm256_set1_epi64x(lit);
  std::size_t i = 0;
  switch (mode.comb) {
    case Combine::kEq:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
    case Combine::kGt:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(va, vb)))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
    case Combine::kGe:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i ge = _mm256_or_si256(_mm256_cmpgt_epi64(va, vb),
                                           _mm256_cmpeq_epi64(va, vb));
        const unsigned m =
            static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(ge))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
  }
  for (; i < n; ++i) out[i] = CmpI64Scalar(op, a[i], lit) ? 1 : 0;
}

__attribute__((target("avx2,bmi2"))) void CmpI64VecVecAvx2(
    CompareOp op, const std::int64_t* a, const std::int64_t* b,
    std::uint8_t* out, std::size_t n) {
  const CmpMode mode = ModeFor(op);
  const unsigned inv = mode.invert ? 0xFu : 0u;
  std::size_t i = 0;
  switch (mode.comb) {
    case Combine::kEq:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
    case Combine::kGt:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpgt_epi64(va, vb)))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
    case Combine::kGe:
      for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i ge = _mm256_or_si256(_mm256_cmpgt_epi64(va, vb),
                                           _mm256_cmpeq_epi64(va, vb));
        const unsigned m =
            static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(ge))) ^
            inv;
        std::memcpy(out + i, &kMask4[m], 4);
      }
      break;
  }
  for (; i < n; ++i) out[i] = CmpI64Scalar(op, a[i], b[i]) ? 1 : 0;
}

__attribute__((target("avx2,bmi2"))) std::size_t CompactSelAvx2(
    std::uint32_t* sel, const std::uint8_t* b8, bool keep, std::size_t n) {
  std::size_t w = 0;
  std::size_t i = 0;
  const unsigned inv = keep ? 0u : 0xFFu;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t bytes;
    std::memcpy(&bytes, b8 + i, sizeof(bytes));
    // One bit per 0/1 byte (the documented boolean-slot encoding).
    const unsigned mask =
        static_cast<unsigned>(_pext_u64(bytes, 0x0101010101010101ull)) ^ inv;
    const __m256i lanes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kPerm.idx[mask]));
    // In-place is safe: the store window [w, w+8) ends at most at i+8,
    // and lanes [i, i+8) were loaded above before this store.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + w),
                        _mm256_permutevar8x32_epi32(lanes, perm));
    w += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) {
    if ((b8[i] != 0) == keep) sel[w++] = sel[i];
  }
  return w;
}

__attribute__((target("avx2,bmi2"))) void LoadI64ContigAvx2(
    const std::byte* src, std::uint32_t width, std::int64_t* out,
    std::size_t n) {
  if (width == 8) {
    std::memcpy(out, src, n * sizeof(std::int64_t));
    return;
  }
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(src + i * sizeof(std::int32_t)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtepi32_epi64(v));
  }
  for (; i < n; ++i) {
    std::int32_t v;
    std::memcpy(&v, src + i * sizeof(std::int32_t), sizeof(v));
    out[i] = v;
  }
}

__attribute__((target("avx2,bmi2"))) bool ArithI64VecVecAvx2(
    ArithOp op, const std::int64_t* a, const std::int64_t* b,
    std::int64_t* out, std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  const bool add = op == ArithOp::kAdd;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        add ? _mm256_add_epi64(va, vb) : _mm256_sub_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = add ? a[i] + b[i] : a[i] - b[i];
  return true;
}

__attribute__((target("avx2,bmi2"))) bool ArithI64VecLitAvx2(
    ArithOp op, const std::int64_t* a, std::int64_t lit, std::int64_t* out,
    std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  const bool add = op == ArithOp::kAdd;
  const __m256i vb = _mm256_set1_epi64x(lit);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        add ? _mm256_add_epi64(va, vb) : _mm256_sub_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = add ? a[i] + lit : a[i] - lit;
  return true;
}

__attribute__((target("avx2,bmi2"))) bool ArithI64LitVecAvx2(
    ArithOp op, std::int64_t lit, const std::int64_t* b, std::int64_t* out,
    std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  const bool add = op == ArithOp::kAdd;
  const __m256i va = _mm256_set1_epi64x(lit);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        add ? _mm256_add_epi64(va, vb) : _mm256_sub_epi64(va, vb));
  }
  for (; i < n; ++i) out[i] = add ? lit + b[i] : lit - b[i];
  return true;
}

#else  // !SMARTSSD_HAVE_AVX2_LANES

// Portable bodies so non-x86 builds link; unreachable in practice
// because ISA detection never selects kAvx2 off x86.

void CmpI64VecLitAvx2(CompareOp op, const std::int64_t* a, std::int64_t lit,
                      std::uint8_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = CmpI64Scalar(op, a[i], lit) ? 1 : 0;
  }
}

void CmpI64VecVecAvx2(CompareOp op, const std::int64_t* a,
                      const std::int64_t* b, std::uint8_t* out,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = CmpI64Scalar(op, a[i], b[i]) ? 1 : 0;
  }
}

std::size_t CompactSelAvx2(std::uint32_t* sel, const std::uint8_t* b8,
                           bool keep, std::size_t n) {
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((b8[i] != 0) == keep) sel[w++] = sel[i];
  }
  return w;
}

void LoadI64ContigAvx2(const std::byte* src, std::uint32_t width,
                       std::int64_t* out, std::size_t n) {
  if (width == 8) {
    std::memcpy(out, src, n * sizeof(std::int64_t));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t v;
    std::memcpy(&v, src + i * sizeof(std::int32_t), sizeof(v));
    out[i] = v;
  }
}

bool ArithI64VecVecAvx2(ArithOp op, const std::int64_t* a,
                        const std::int64_t* b, std::int64_t* out,
                        std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = op == ArithOp::kAdd ? a[i] + b[i] : a[i] - b[i];
  }
  return true;
}

bool ArithI64VecLitAvx2(ArithOp op, const std::int64_t* a, std::int64_t lit,
                        std::int64_t* out, std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = op == ArithOp::kAdd ? a[i] + lit : a[i] - lit;
  }
  return true;
}

bool ArithI64LitVecAvx2(ArithOp op, std::int64_t lit, const std::int64_t* b,
                        std::int64_t* out, std::size_t n) {
  if (op != ArithOp::kAdd && op != ArithOp::kSub) return false;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = op == ArithOp::kAdd ? lit + b[i] : lit - b[i];
  }
  return true;
}

#endif  // SMARTSSD_HAVE_AVX2_LANES

}  // namespace smartssd::expr
