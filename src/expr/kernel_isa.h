#ifndef SMARTSSD_EXPR_KERNEL_ISA_H_
#define SMARTSSD_EXPR_KERNEL_ISA_H_

// Process-wide instruction-set selection for the compiled batch kernel.
//
// The batch kernel has two implementations of its int64 hot loops:
// portable C++ (the semantic baseline, always available) and AVX2+BMI2
// lanes (simd_i64.h). Both produce byte-identical slot contents and
// selection vectors — the SIMD lanes are a pure speed substitution, so
// OpCounts and every virtual-time number are unaffected by the choice.
//
// Selection is per-process: detected once from CPUID at startup,
// overridable by the SMARTSSD_KERNEL_ISA environment variable
// ("scalar" | "avx2") or programmatically via SetKernelIsa (used by the
// differential harness to run both ISAs against each other, and by the
// wall-clock bench to isolate the SIMD contribution).

namespace smartssd::expr {

enum class KernelIsa : int {
  kScalarIsa = 0,  // portable C++ loops (the semantic baseline)
  kAvx2 = 1,       // AVX2+BMI2 int64 compare/arith/compaction lanes
};

// Best ISA this CPU supports, from CPUID alone (no env override).
KernelIsa DetectKernelIsa();

// The current process-wide selection. Initialized to DetectKernelIsa()
// filtered through SMARTSSD_KERNEL_ISA on first use.
KernelIsa CurrentKernelIsa();

// Overrides the process-wide selection; returns the previous value.
// Requesting kAvx2 on a CPU without the lanes keeps the scalar ISA.
KernelIsa SetKernelIsa(KernelIsa isa);

const char* KernelIsaName(KernelIsa isa);

// RAII override for scoped A/B runs. The differential harness runs its
// configurations sequentially on one thread, so a scoped process-global
// swap gives each run a well-defined ISA.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa) : prev_(SetKernelIsa(isa)) {}
  ~ScopedKernelIsa() { SetKernelIsa(prev_); }
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  KernelIsa prev_;
};

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_KERNEL_ISA_H_
