#ifndef SMARTSSD_EXPR_VALUE_H_
#define SMARTSSD_EXPR_VALUE_H_

#include <cstdint>
#include <string_view>

#include "common/macros.h"

namespace smartssd::expr {

// A runtime scalar. Integers cover the paper's scaled-decimal and date
// encodings; doubles appear only in final results (e.g., Q14's promo
// ratio); strings are views into page bytes or literal storage.
class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kInt, kDouble, kString };

  Value() : type_(Type::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = Type::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int(std::int64_t i) {
    Value v;
    v.type_ = Type::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = Type::kDouble;
    v.double_ = d;
    return v;
  }
  static Value String(std::string_view s) {
    Value v;
    v.type_ = Type::kString;
    v.string_ = s;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const {
    SMARTSSD_CHECK(type_ == Type::kBool);
    return int_ != 0;
  }
  std::int64_t AsInt() const {
    SMARTSSD_CHECK(type_ == Type::kInt);
    return int_;
  }
  double AsDouble() const {
    if (type_ == Type::kInt) return static_cast<double>(int_);
    SMARTSSD_CHECK(type_ == Type::kDouble);
    return double_;
  }
  std::string_view AsString() const {
    SMARTSSD_CHECK(type_ == Type::kString);
    return string_;
  }

 private:
  Type type_;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string_view string_;
};

}  // namespace smartssd::expr

#endif  // SMARTSSD_EXPR_VALUE_H_
