#include "smart/session_task.h"

#include <algorithm>
#include <utility>

namespace smartssd::smart {

SessionTask::SessionTask(SmartSsdRuntime* runtime, InSsdProgram* program,
                         const PollingPolicy& policy, SimTime start,
                         std::vector<std::byte>* host_output)
    : runtime_(runtime),
      device_(&runtime->device()),
      program_(program),
      policy_(policy),
      host_output_(host_output),
      start_(start),
      fail_time_(start),
      queue_(runtime->device().page_size()) {
  stats_.session_id = runtime_->next_session_id_++;
  stats_.open_issued = start;
}

SessionTask::~SessionTask() {
  // An abandoned in-flight task (hedge lost the race, scheduler
  // teardown) still hands every grant back; it just skips the
  // completed/failed bookkeeping.
  if (begin_noted_) runtime_->NoteSessionAbandoned();
  ReleaseGrants();
  RetireIfBegan();
}

Result<SimTime> SessionTask::Step() {
  switch (state_) {
    case State::kOpen:
      return StepOpen();
    case State::kProcess:
      return StepProcess();
    case State::kFinishProgram:
      return StepFinishProgram();
    case State::kPoll:
      return StepPoll();
    case State::kClose:
      return StepClose();
    case State::kDone:
    case State::kFailed:
      break;
  }
  SMARTSSD_CHECK(false);  // Step() on a finished session task
  return InternalError("unreachable");
}

Result<SimTime> SessionTask::StepOpen() {
  sim::FaultInjector& faults = device_->fault_injector();

  // --- OPEN: command round + resource grants + program build phase ---
  const SimTime t = device_->HostCommand(start_);
  fail_time_ = t;
  if (faults.OnEvent(sim::FaultKind::kOpenRejected, t)) {
    return Fail(ResourceExhaustedError(
        "OPEN rejected by the device (injected fault)"));
  }
  const Status thread_grant = device_->AcquireSessionThread();
  if (!thread_grant.ok()) return Fail(thread_grant);
  has_thread_grant_ = true;
  begin_noted_ = true;
  runtime_->NoteSessionBegin();
  services_.emplace(device_);
  services_->NoteTime(t);
  const std::uint64_t dram_needed = program_->DramBytesRequired();
  if (dram_needed > 0) {
    const Status dram = services_->AllocateDram(dram_needed);
    if (!dram.ok()) return Fail(dram);
  }
  Result<SimTime> opened = program_->Open(*services_, t);
  if (!opened.ok()) return Fail(opened.status());
  // Spill writes issued while evicting build partitions complete before
  // the OPEN acknowledges.
  open_done_ = std::max({opened.value(), t, services_->spill_done()});
  stats_.open_done = open_done_;
  fail_time_ = open_done_;
  if (runtime_->tracer_ != nullptr) {
    runtime_->tracer_->Complete(
        runtime_->track_, "OPEN", "protocol", start_, open_done_,
        {obs::Arg::Uint("session", stats_.session_id),
         obs::Arg::Uint("dram_bytes", dram_needed)});
  }

  processing_done_ = open_done_;
  extents_ = program_->InputExtents();
  extent_idx_ = 0;
  page_in_extent_ = 0;
  while (extent_idx_ < extents_.size() &&
         extents_[extent_idx_].count == 0) {
    ++extent_idx_;
  }
  state_ = extent_idx_ < extents_.size() ? State::kProcess
                                         : State::kFinishProgram;
  return open_done_;
}

Result<SimTime> SessionTask::StepProcess() {
  sim::FaultInjector& faults = device_->fault_injector();
  const LpnRange& extent = extents_[extent_idx_];
  const std::uint64_t lpn = extent.first_lpn + page_in_extent_;

  // Reads stream against the OPEN completion time: the device issues
  // them as fast as the flash channels and DRAM bus admit, independent
  // of how far the embedded cores have gotten.
  Result<SimTime> read = device_->InternalReadPageTiming(lpn, open_done_);
  if (!read.ok()) return Fail(read.status());
  sink_.Clear();
  services_->NoteTime(read.value());
  Result<ProgramCharge> charge =
      program_->ProcessPage(device_->ViewPage(lpn), sink_);
  if (!charge.ok()) return Fail(charge.status());
  // Probe-side spill writes issued during the callback belong to this
  // page's work; the page retires once both CPU and spill I/O are done.
  const SimTime done = std::max(
      device_->ExecuteOnDevice(charge.value().cycles, read.value()),
      services_->spill_done());
  if (faults.OnEvent(sim::FaultKind::kDeviceReset, done)) {
    fail_time_ = done + kDeviceResetRecovery;
    return Fail(AbortedError("device reset mid-session (injected fault)"));
  }
  if (faults.OnEvent(sim::FaultKind::kResultQueueOverflow, done)) {
    fail_time_ = done;
    return Fail(ResourceExhaustedError(
        "device result queue overflow (injected fault)"));
  }
  queue_.Append(sink_.bytes(), done);
  stats_.embedded_cycles += charge.value().cycles;
  ++stats_.pages_processed;
  processing_done_ = std::max(processing_done_, done);
  fail_time_ = processing_done_;

  // Advance the page cursor; skip empty extents.
  ++page_in_extent_;
  if (page_in_extent_ >= extents_[extent_idx_].count) {
    page_in_extent_ = 0;
    ++extent_idx_;
    while (extent_idx_ < extents_.size() &&
           extents_[extent_idx_].count == 0) {
      ++extent_idx_;
    }
    if (extent_idx_ >= extents_.size()) state_ = State::kFinishProgram;
  }
  return processing_done_;
}

Result<SimTime> SessionTask::StepFinishProgram() {
  sink_.Clear();
  services_->NoteTime(processing_done_);
  Result<ProgramCharge> final_charge = program_->Finish(sink_);
  if (!final_charge.ok()) return Fail(final_charge.status());
  // Multi-pass probing reads spilled partitions back during Finish; the
  // program is done when both the CPU work and that I/O retire.
  processing_done_ = std::max(
      device_->ExecuteOnDevice(final_charge.value().cycles,
                               processing_done_),
      services_->spill_done());
  stats_.embedded_cycles += final_charge.value().cycles;
  stats_.spill_pages_written = services_->spill_pages_written();
  stats_.spill_pages_read = services_->spill_pages_read();
  queue_.Append(sink_.bytes(), processing_done_);
  queue_.Flush(processing_done_);
  stats_.processing_done = processing_done_;
  fail_time_ = processing_done_;
  if (runtime_->tracer_ != nullptr) {
    runtime_->tracer_->Complete(
        runtime_->track_, "process extents", "protocol", open_done_,
        processing_done_,
        {obs::Arg::Uint("pages", stats_.pages_processed),
         obs::Arg::Uint("embedded_cycles", stats_.embedded_cycles)});
  }

  // The host's polling loop overlaps device processing: it starts right
  // after the OPEN acknowledgment, not after the last page retires.
  poll_time_ = open_done_;
  last_transfer_ = open_done_;
  interval_ = policy_.min_poll_interval;
  retries_left_ = policy_.session_retry_budget;
  state_ = State::kPoll;
  return processing_done_;
}

Result<SimTime> SessionTask::StepPoll() {
  sim::FaultInjector& faults = device_->fault_injector();
  const SimTime get_issued = poll_time_;
  poll_time_ = device_->HostCommand(poll_time_);  // the GET itself
  ++stats_.gets_issued;
  fail_time_ = poll_time_;
  if (faults.OnEvent(sim::FaultKind::kDeviceReset, poll_time_)) {
    fail_time_ = poll_time_ + kDeviceResetRecovery;
    return Fail(AbortedError("device reset mid-session (injected fault)"));
  }
  if (faults.OnEvent(sim::FaultKind::kGetStall, poll_time_)) {
    // The response never arrives: the host times out and re-issues,
    // burning one unit of the session retry budget.
    if (retries_left_ == 0) {
      fail_time_ = poll_time_ + policy_.get_timeout;
      return Fail(IoError("GET stalled; session retry budget exhausted"));
    }
    --retries_left_;
    ++stats_.get_retries;
    if (runtime_->tracer_ != nullptr) {
      runtime_->tracer_->Instant(
          runtime_->track_, "GET stall", "protocol", poll_time_,
          {obs::Arg::Uint("retries_left", retries_left_)});
    }
    poll_time_ += policy_.get_timeout;
    interval_ = policy_.min_poll_interval;
    return poll_time_;
  }
  bool transferred = false;
  ResultChunk chunk;
  while (queue_.PopReady(poll_time_, &chunk)) {
    if (faults.OnBytes(sim::FaultKind::kTransferError, chunk.data.size(),
                       poll_time_)) {
      fail_time_ = poll_time_;
      return Fail(IoError(
          "result transfer failed on the host interface (injected "
          "fault)"));
    }
    poll_time_ = device_->TransferToHost(chunk.data.size(), poll_time_);
    if (host_output_ != nullptr) {
      host_output_->insert(host_output_->end(), chunk.data.begin(),
                           chunk.data.end());
    }
    stats_.result_bytes += chunk.data.size();
    last_transfer_ = poll_time_;
    transferred = true;
  }
  if (runtime_->tracer_ != nullptr) {
    runtime_->tracer_->Complete(
        runtime_->track_, "GET", "protocol", get_issued, poll_time_,
        {obs::Arg::Uint("delivered", transferred ? 1 : 0)});
  }
  if (queue_.pending_chunks() == 0 && poll_time_ >= processing_done_) {
    // This GET saw the program finished with nothing left to deliver.
    stats_.last_transfer_done = last_transfer_;
    state_ = State::kClose;
    return poll_time_;
  }
  if (transferred) {
    interval_ = policy_.min_poll_interval;
  } else {
    if (runtime_->tracer_ != nullptr) {
      runtime_->tracer_->Instant(
          runtime_->track_, "poll backoff", "protocol", poll_time_,
          {obs::Arg::Uint("interval_ns", interval_)});
    }
    poll_time_ += interval_;
    interval_ = policy_.NextInterval(interval_);
  }
  return poll_time_;
}

Result<SimTime> SessionTask::StepClose() {
  // --- CLOSE: tear down, free grants ---
  stats_.close_done = device_->HostCommand(poll_time_);
  if (runtime_->tracer_ != nullptr) {
    runtime_->tracer_->Complete(
        runtime_->track_, "CLOSE", "protocol", poll_time_,
        stats_.close_done,
        {obs::Arg::Uint("session", stats_.session_id)});
  }
  ReleaseGrants();
  state_ = State::kDone;
  runtime_->NoteSessionFinished(/*failed=*/false, stats_.close_done,
                                Status::OK());
  RetireIfBegan();
  return stats_.close_done;
}

Status SessionTask::Fail(const Status& error) {
  state_ = State::kFailed;
  ReleaseGrants();
  runtime_->NoteSessionFinished(/*failed=*/true, fail_time_, error);
  RetireIfBegan();
  return error;
}

void SessionTask::RetireIfBegan() {
  if (begin_noted_) {
    begin_noted_ = false;
    runtime_->NoteSessionRetired();
  }
}

void SessionTask::ReleaseGrants() {
  services_.reset();  // hands session DRAM back
  if (has_thread_grant_) {
    device_->ReleaseSessionThread();
    has_thread_grant_ = false;
  }
}

}  // namespace smartssd::smart
