#ifndef SMARTSSD_SMART_SESSION_TASK_H_
#define SMARTSSD_SMART_SESSION_TASK_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "smart/program.h"
#include "smart/protocol.h"
#include "smart/result_queue.h"
#include "smart/runtime.h"
#include "ssd/ssd_device.h"

namespace smartssd::smart {

// One Smart SSD session as a resumable state machine. The monolithic
// OPEN -> stream/process -> GET* -> CLOSE exchange of RunSession is
// split into steps that each retire one protocol unit:
//
//   kOpen           the OPEN command round, thread + DRAM grants, and
//                   the program's build phase;
//   kProcess        one input page: internal read, program callback,
//                   embedded execution, result-queue append;
//   kFinishProgram  the program's Finish callback and final flush;
//   kPoll           one GET round: command, drain ready chunks over the
//                   host link, back off if nothing was ready;
//   kClose          the CLOSE command round and grant teardown.
//
// Driven to completion in a tight loop (SmartSsdRuntime::RunSession does
// exactly that), the device sees the identical call sequence the old
// blocking loop issued, so solo timelines are byte-identical. Driven by
// a scheduler that interleaves many tasks, co-running sessions' requests
// reach the shared FIFO resources (flash channels, DRAM bus, embedded
// cores, host link) in virtual-time order instead of submission order —
// genuine concurrent sharing instead of serialization.
//
// Failure semantics match RunSession: any non-recoverable device fault
// tears the session down on the spot (thread grant and DRAM released,
// runtime accounting updated, a "session failed" instant traced) and
// surfaces as the Step() error; fail_time() holds the teardown time.
class SessionTask {
 public:
  ~SessionTask();
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(SessionTask);

  // Advances one protocol unit. Returns the virtual time that unit
  // retired at — when the session next has work ready. Calling Step()
  // on a finished task is a programmer error.
  Result<SimTime> Step();

  bool done() const { return state_ == State::kDone; }
  bool failed() const { return state_ == State::kFailed; }
  bool finished() const { return done() || failed(); }
  SimTime fail_time() const { return fail_time_; }

  // Valid once done(): the completed session's timeline.
  const SessionStats& stats() const { return stats_; }

 private:
  friend class SmartSsdRuntime;

  enum class State {
    kOpen,
    kProcess,
    kFinishProgram,
    kPoll,
    kClose,
    kDone,
    kFailed,
  };

  // Device adapter with DRAM bookkeeping so teardown can release
  // everything the session allocated (same contract the blocking
  // runtime always had).
  class SessionServices : public DeviceServices {
   public:
    explicit SessionServices(ssd::SsdDevice* device) : device_(device) {}
    ~SessionServices() override {
      // Release in the reverse of acquisition: spill extents first
      // (trimming their flash pages), then the DRAM grant.
      for (const auto& [lpn, pages] : spill_extents_) {
        device_->ReleaseSpillExtent(lpn, pages);
      }
      if (allocated_ > 0) device_->ReleaseDeviceDram(allocated_);
    }

    std::uint32_t page_size() const override {
      return device_->page_size();
    }
    Result<SimTime> ReadInternal(std::uint64_t lpn,
                                 SimTime ready) override {
      return device_->InternalReadPageTiming(lpn, ready);
    }
    std::span<const std::byte> ViewPage(std::uint64_t lpn) const override {
      return device_->ViewPage(lpn);
    }
    SimTime Execute(std::uint64_t cycles, SimTime ready) override {
      return device_->ExecuteOnDevice(cycles, ready);
    }
    Status AllocateDram(std::uint64_t bytes) override {
      SMARTSSD_RETURN_IF_ERROR(device_->AllocateDeviceDram(bytes));
      allocated_ += bytes;
      return Status::OK();
    }

    Result<std::uint64_t> AllocateSpillExtent(
        std::uint64_t pages) override {
      SMARTSSD_ASSIGN_OR_RETURN(const std::uint64_t lpn,
                                device_->AllocateSpillExtent(pages));
      spill_extents_.emplace_back(lpn, pages);
      return lpn;
    }
    Result<SimTime> WriteSpillPage(
        std::uint64_t lpn, std::span<const std::byte> data) override {
      SMARTSSD_ASSIGN_OR_RETURN(
          const SimTime done,
          device_->InternalWritePage(lpn, data,
                                     std::max(now_, spill_done_)));
      spill_done_ = done;
      ++spill_pages_written_;
      return done;
    }
    Result<SimTime> ReadSpillPage(std::uint64_t lpn) override {
      SMARTSSD_ASSIGN_OR_RETURN(
          const SimTime done,
          device_->InternalReadPageTiming(lpn,
                                          std::max(now_, spill_done_)));
      spill_done_ = done;
      ++spill_pages_read_;
      return done;
    }
    void NoteTime(SimTime now) override {
      now_ = std::max(now_, now);
    }

    // Latest spill-I/O completion, so the session's close can wait for
    // in-flight spill traffic.
    SimTime spill_done() const { return spill_done_; }
    std::uint64_t spill_pages_written() const {
      return spill_pages_written_;
    }
    std::uint64_t spill_pages_read() const { return spill_pages_read_; }

   private:
    ssd::SsdDevice* device_;
    std::uint64_t allocated_ = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spill_extents_;
    SimTime now_ = 0;
    SimTime spill_done_ = 0;
    std::uint64_t spill_pages_written_ = 0;
    std::uint64_t spill_pages_read_ = 0;
  };

  // Collects the bytes a program emits during one callback; the task
  // stamps them with the callback's completion time afterwards.
  class BufferingSink : public ResultSink {
   public:
    void Emit(std::span<const std::byte> bytes) override {
      buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    }
    std::span<const std::byte> bytes() const { return buffer_; }
    void Clear() { buffer_.clear(); }

   private:
    std::vector<std::byte> buffer_;
  };

  SessionTask(SmartSsdRuntime* runtime, InSsdProgram* program,
              const PollingPolicy& policy, SimTime start,
              std::vector<std::byte>* host_output);

  Result<SimTime> StepOpen();
  Result<SimTime> StepProcess();
  Result<SimTime> StepFinishProgram();
  Result<SimTime> StepPoll();
  Result<SimTime> StepClose();

  // Marks the task failed, releases every grant, and records the
  // runtime-side accounting + trace instant. Returns `error` through.
  Status Fail(const Status& error);
  void ReleaseGrants();
  void RetireIfBegan();

  SmartSsdRuntime* runtime_;
  ssd::SsdDevice* device_;
  InSsdProgram* program_;
  PollingPolicy policy_;
  std::vector<std::byte>* host_output_;

  State state_ = State::kOpen;
  SessionStats stats_;
  SimTime start_ = 0;
  SimTime fail_time_ = 0;

  std::optional<SessionServices> services_;
  bool has_thread_grant_ = false;
  // A session is "active" from firmware-thread grant to retirement; the
  // runtime's concurrency accounting only sees granted sessions.
  bool begin_noted_ = false;

  ResultQueue queue_;
  BufferingSink sink_;

  // Streaming cursor over the program's declared extents.
  std::vector<LpnRange> extents_;
  std::size_t extent_idx_ = 0;
  std::uint64_t page_in_extent_ = 0;

  SimTime open_done_ = 0;
  SimTime processing_done_ = 0;

  // GET polling state.
  SimTime poll_time_ = 0;
  SimTime last_transfer_ = 0;
  SimDuration interval_ = 0;
  std::uint32_t retries_left_ = 0;
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_SESSION_TASK_H_
