#ifndef SMARTSSD_SMART_RUNTIME_H_
#define SMARTSSD_SMART_RUNTIME_H_

#include <cstdint>
#include <memory>

#include "common/macros.h"
#include "common/result.h"
#include "obs/trace.h"
#include "smart/program.h"
#include "smart/protocol.h"
#include "ssd/ssd_device.h"

namespace smartssd::smart {

// Everything a completed session reports back to the host-side executor.
struct SessionStats {
  SessionId session_id = 0;
  SimTime open_issued = 0;
  SimTime open_done = 0;        // OPEN acknowledged, build phase complete
  SimTime processing_done = 0;  // last page processed on the device
  SimTime last_transfer_done = 0;  // last result byte at the host
  SimTime close_done = 0;       // CLOSE acknowledged: session elapsed end
  std::uint64_t pages_processed = 0;
  std::uint64_t result_bytes = 0;
  std::uint64_t embedded_cycles = 0;
  std::uint64_t gets_issued = 0;
  // Stalled GETs the host re-issued (each consumed one unit of the
  // session retry budget and recovered).
  std::uint32_t get_retries = 0;

  SimDuration elapsed() const { return close_done - open_issued; }
};

// The Smart SSD runtime framework of Section 3: accepts a user-defined
// program through OPEN, streams its declared input extents through the
// internal data path, schedules its per-page work on the embedded cores,
// and delivers its output to the host through polled GET commands.
//
// RunSession executes the whole OPEN -> GET* -> CLOSE exchange and
// returns the timeline. The host result bytes are appended to
// `host_output` exactly as the GET responses deliver them.
//
// Failure semantics: the session protocol survives recoverable faults
// (stalled GETs within the retry budget) and turns everything else —
// uncorrectable reads, device resets, rejected OPENs, queue overflows,
// transfer errors — into a non-OK Status with guaranteed teardown: all
// thread/DRAM grants are released on every exit path, enforced by a
// session-leak check against the device's DRAM accounting. On failure
// `failed_at` (if non-null) receives the virtual time at which the
// session was torn down, so the caller can resume (e.g. fall back to the
// host path) on a consistent clock.
class SmartSsdRuntime {
 public:
  explicit SmartSsdRuntime(ssd::SsdDevice* device);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(SmartSsdRuntime);

  Result<SessionStats> RunSession(InSsdProgram& program,
                                  const PollingPolicy& policy,
                                  SimTime start,
                                  std::vector<std::byte>* host_output,
                                  SimTime* failed_at = nullptr);

  ssd::SsdDevice& device() { return *device_; }

  std::uint64_t sessions_run() const { return sessions_run_; }
  std::uint64_t sessions_failed() const { return sessions_failed_; }

  // Records the protocol timeline — OPEN/GET/CLOSE spans, poll backoff
  // and stall instants, session failures — on a "session" lane under
  // `process` (the host side, which drives the protocol). nullptr
  // detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

 private:
  Result<SessionStats> RunSessionImpl(InSsdProgram& program,
                                      const PollingPolicy& policy,
                                      SimTime start,
                                      std::vector<std::byte>* host_output,
                                      SimTime* fail_time);

  ssd::SsdDevice* device_;
  SessionId next_session_id_ = 1;
  std::uint64_t sessions_run_ = 0;
  std::uint64_t sessions_failed_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_RUNTIME_H_
