#ifndef SMARTSSD_SMART_RUNTIME_H_
#define SMARTSSD_SMART_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "obs/trace.h"
#include "smart/program.h"
#include "smart/protocol.h"
#include "ssd/ssd_device.h"

namespace smartssd::smart {

class SessionTask;

// Everything a completed session reports back to the host-side executor.
struct SessionStats {
  SessionId session_id = 0;
  SimTime open_issued = 0;
  SimTime open_done = 0;        // OPEN acknowledged, build phase complete
  SimTime processing_done = 0;  // last page processed on the device
  SimTime last_transfer_done = 0;  // last result byte at the host
  SimTime close_done = 0;       // CLOSE acknowledged: session elapsed end
  std::uint64_t pages_processed = 0;
  std::uint64_t result_bytes = 0;
  std::uint64_t embedded_cycles = 0;
  std::uint64_t gets_issued = 0;
  // Stalled GETs the host re-issued (each consumed one unit of the
  // session retry budget and recovered).
  std::uint32_t get_retries = 0;
  // Hybrid-join spill traffic on the internal path (pages of build and
  // probe partitions written to / read back from flash).
  std::uint64_t spill_pages_written = 0;
  std::uint64_t spill_pages_read = 0;

  SimDuration elapsed() const { return close_done - open_issued; }
};

// The Smart SSD runtime framework of Section 3: accepts a user-defined
// program through OPEN, streams its declared input extents through the
// internal data path, schedules its per-page work on the embedded cores,
// and delivers its output to the host through polled GET commands.
//
// Two driving modes share one protocol implementation (SessionTask):
//
//   * RunSession — the blocking single-session API: executes the whole
//     OPEN -> GET* -> CLOSE exchange and returns the timeline. The host
//     result bytes are appended to `host_output` exactly as the GET
//     responses deliver them.
//   * StartSession — the resumable multi-session API: returns a
//     SessionTask the caller advances one protocol unit at a time, so a
//     workload scheduler can interleave many live sessions on the shared
//     device resources. Every open session holds one firmware thread
//     grant (session_slots_free()); callers should park new sessions
//     while the pool is empty rather than eat an OPEN rejection.
//
// Failure semantics: the session protocol survives recoverable faults
// (stalled GETs within the retry budget) and turns everything else —
// uncorrectable reads, device resets, rejected OPENs, queue overflows,
// transfer errors — into a non-OK Status with guaranteed teardown: all
// thread/DRAM grants are released on every exit path, enforced by a
// session-leak check against the device's DRAM accounting. On failure
// `failed_at` (if non-null) receives the virtual time at which the
// session was torn down, so the caller can resume (e.g. fall back to the
// host path) on a consistent clock.
class SmartSsdRuntime {
 public:
  explicit SmartSsdRuntime(ssd::SsdDevice* device);
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(SmartSsdRuntime);

  Result<SessionStats> RunSession(InSsdProgram& program,
                                  const PollingPolicy& policy,
                                  SimTime start,
                                  std::vector<std::byte>* host_output,
                                  SimTime* failed_at = nullptr);

  // Opens a resumable session. No device traffic happens until the first
  // Step(); the task borrows `program` and `host_output` for its
  // lifetime. Destroying an unfinished task releases its grants.
  std::unique_ptr<SessionTask> StartSession(
      InSsdProgram& program, const PollingPolicy& policy, SimTime start,
      std::vector<std::byte>* host_output);

  ssd::SsdDevice& device() { return *device_; }

  // Firmware thread grants still available for new sessions. A scheduler
  // holds queries at the host while this is 0 (Section 3: OPEN grants a
  // thread, and the pool is what bounds in-device concurrency).
  int session_slots_free() const {
    return device_->session_threads_free();
  }

  std::uint64_t sessions_run() const { return sessions_run_; }
  std::uint64_t sessions_failed() const { return sessions_failed_; }
  // Sessions whose task was destroyed mid-flight (a hedged duplicate
  // won the race, or a coordinator cancelled the query). Their grants
  // were still released; they just never reached CLOSE or failure.
  std::uint64_t sessions_abandoned() const { return sessions_abandoned_; }
  // Sessions currently holding a firmware thread grant (OPEN granted,
  // not yet retired), and the high-water mark — the device's actual
  // in-flight concurrency, bounded by session_threads.
  int active_sessions() const { return active_sessions_; }
  int max_active_sessions() const { return max_active_sessions_; }

  // True if a completed multi-session epoch left device DRAM grants
  // unreturned (checked whenever the live-session count returns to
  // zero). The blocking RunSession path reports the same condition as an
  // InternalError instead.
  bool session_leak_detected() const { return leak_detected_; }

  // Records the protocol timeline — OPEN/GET/CLOSE spans, poll backoff
  // and stall instants, session failures — on a "session" lane under
  // `process` (the host side, which drives the protocol). nullptr
  // detaches.
  void AttachTracer(obs::Tracer* tracer, std::string_view process);

 private:
  friend class SessionTask;

  // Session lifecycle accounting, called by SessionTask.
  void NoteSessionBegin();
  void NoteSessionFinished(bool failed, SimTime fail_time,
                           const Status& status);
  void NoteSessionAbandoned() { ++sessions_abandoned_; }
  void NoteSessionRetired();

  ssd::SsdDevice* device_;
  SessionId next_session_id_ = 1;
  std::uint64_t sessions_run_ = 0;
  std::uint64_t sessions_failed_ = 0;
  std::uint64_t sessions_abandoned_ = 0;
  int active_sessions_ = 0;
  int max_active_sessions_ = 0;
  std::uint64_t idle_dram_free_ = 0;
  bool leak_detected_ = false;
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_RUNTIME_H_
