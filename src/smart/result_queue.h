#ifndef SMARTSSD_SMART_RESULT_QUEUE_H_
#define SMARTSSD_SMART_RESULT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/units.h"

namespace smartssd::smart {

// A chunk of result bytes produced inside the device, ready for pickup by
// a GET command at `ready_time`.
struct ResultChunk {
  std::vector<std::byte> data;
  SimTime ready_time = 0;
};

// Accumulates result bytes emitted by an in-SSD program into page-sized
// chunks. Programs call Append() as they produce output; the runtime
// seals a chunk when it reaches the chunk size (one device page) or at
// end of processing, stamping it with the virtual time it became
// complete.
class ResultQueue {
 public:
  explicit ResultQueue(std::uint32_t chunk_bytes)
      : chunk_bytes_(chunk_bytes) {
    SMARTSSD_CHECK_GT(chunk_bytes, 0u);
  }
  SMARTSSD_DISALLOW_COPY_AND_ASSIGN(ResultQueue);

  // Appends output produced at virtual time `produced_at`.
  void Append(std::span<const std::byte> bytes, SimTime produced_at) {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t room = chunk_bytes_ - open_chunk_.size();
      const std::size_t take = std::min(room, bytes.size() - offset);
      open_chunk_.insert(open_chunk_.end(), bytes.begin() + offset,
                         bytes.begin() + offset + take);
      offset += take;
      if (open_chunk_.size() == chunk_bytes_) Seal(produced_at);
    }
    total_bytes_ += bytes.size();
    last_produce_time_ = std::max(last_produce_time_, produced_at);
  }

  // Seals any partially filled chunk (end of program).
  void Flush(SimTime at) {
    if (!open_chunk_.empty()) Seal(at);
  }

  bool HasReady(SimTime at) const {
    return !sealed_.empty() && sealed_.front().ready_time <= at;
  }
  bool empty() const { return sealed_.empty() && open_chunk_.empty(); }

  // Pops the next chunk if it is ready at `at`.
  bool PopReady(SimTime at, ResultChunk* out) {
    if (!HasReady(at)) return false;
    *out = std::move(sealed_.front());
    sealed_.pop_front();
    return true;
  }

  // Earliest time a pending sealed chunk becomes ready, or 0 if none.
  SimTime NextReadyTime() const {
    return sealed_.empty() ? 0 : sealed_.front().ready_time;
  }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t pending_chunks() const { return sealed_.size(); }

 private:
  void Seal(SimTime at) {
    ResultChunk chunk;
    chunk.data = std::move(open_chunk_);
    chunk.ready_time = at;
    open_chunk_ = {};
    sealed_.push_back(std::move(chunk));
  }

  std::uint32_t chunk_bytes_;
  std::vector<std::byte> open_chunk_;
  std::deque<ResultChunk> sealed_;
  std::uint64_t total_bytes_ = 0;
  SimTime last_produce_time_ = 0;
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_RESULT_QUEUE_H_
