#ifndef SMARTSSD_SMART_PROGRAM_H_
#define SMARTSSD_SMART_PROGRAM_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/units.h"

namespace smartssd::smart {

// A contiguous run of logical pages the program wants streamed to it.
struct LpnRange {
  std::uint64_t first_lpn = 0;
  std::uint64_t count = 0;
};

// What a program callback consumed. The runtime converts cycles into
// virtual time on the embedded CPU complex; programs compute their cycle
// charge from the cost model so that the same operator code can report
// different costs on the embedded cores vs. the host Xeons.
struct ProgramCharge {
  std::uint64_t cycles = 0;
};

// Interface the runtime hands a program for producing result bytes.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void Emit(std::span<const std::byte> bytes) = 0;
};

// Device-side services available to a program while its session is open.
// Build phases (e.g., hashing the inner join table) read their input
// through ReadInternal, which charges the flash->DRAM path but never the
// host link — the defining property of in-SSD execution.
class DeviceServices {
 public:
  virtual ~DeviceServices() = default;

  virtual std::uint32_t page_size() const = 0;

  // Internal page read (flash + DMA). Returns availability time in DRAM.
  virtual Result<SimTime> ReadInternal(std::uint64_t lpn, SimTime ready) = 0;

  // Zero-copy view of a page's current contents.
  virtual std::span<const std::byte> ViewPage(std::uint64_t lpn) const = 0;

  // Runs cycles on the embedded CPU complex, returns completion time.
  virtual SimTime Execute(std::uint64_t cycles, SimTime ready) = 0;

  // Reserves device DRAM for session state (hash tables, buffers).
  // Fails with RESOURCE_EXHAUSTED if it does not fit.
  virtual Status AllocateDram(std::uint64_t bytes) = 0;

  // --- Spill support (hybrid hash join) ------------------------------
  // A session that cannot hold its build side in the DRAM grant may
  // spill partitions to flash through the real FTL write path. Spill
  // extents live above the catalog's allocated pages, are charged on
  // the virtual timeline (DMA + flash program, visible to GC), and are
  // trimmed back when the session ends. The default implementations
  // refuse, so only runtimes that wire them up admit spilling.

  // Reserves `pages` contiguous logical pages for spill; returns the
  // first LPN.
  virtual Result<std::uint64_t> AllocateSpillExtent(std::uint64_t pages) {
    (void)pages;
    return UnimplementedError("device does not support spill extents");
  }

  // Writes one page to a spill LPN (DMA + out-of-place FTL program).
  // Returns the write's completion time.
  virtual Result<SimTime> WriteSpillPage(std::uint64_t lpn,
                                         std::span<const std::byte> data) {
    (void)lpn;
    (void)data;
    return UnimplementedError("device does not support spill writes");
  }

  // Reads a spill page back into DRAM (flash + DMA); the bytes are then
  // visible through ViewPage. Returns the availability time.
  virtual Result<SimTime> ReadSpillPage(std::uint64_t lpn) {
    (void)lpn;
    return UnimplementedError("device does not support spill reads");
  }

  // Advances the service's notion of "now"; spill I/O issued from page
  // callbacks (which have no explicit time parameter) is ordered after
  // the latest of this and the previous spill operation.
  virtual void NoteTime(SimTime now) { (void)now; }
};

// A user-defined program pushed into the Smart SSD. Lifecycle, driven by
// the runtime:
//
//   Open()        once, at OPEN — set up state, run any build phase.
//   InputExtents() once — declare the pages to stream.
//   ProcessPage() per input page, in order — do the work, emit results,
//                 and return the embedded-CPU cycles consumed.
//   Finish()      once after the last page — emit any final result
//                 (e.g., the aggregate), return trailing cycles.
//
// Programs run on real page bytes; all results they emit are real data
// the host-side operators verify. Only *time* is simulated.
class InSsdProgram {
 public:
  virtual ~InSsdProgram() = default;

  virtual std::string_view name() const = 0;

  // Returns the completion time of the open/build phase.
  virtual Result<SimTime> Open(DeviceServices& device, SimTime ready) = 0;

  virtual std::vector<LpnRange> InputExtents() const = 0;

  virtual Result<ProgramCharge> ProcessPage(
      std::span<const std::byte> page, ResultSink& sink) = 0;

  virtual Result<ProgramCharge> Finish(ResultSink& sink) = 0;

  // Device DRAM the session must reserve before starting (beyond the
  // streaming buffers the runtime itself accounts for).
  virtual std::uint64_t DramBytesRequired() const { return 0; }
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_PROGRAM_H_
