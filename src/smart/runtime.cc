#include "smart/runtime.h"

#include <algorithm>
#include <utility>

#include "smart/session_task.h"

namespace smartssd::smart {

SmartSsdRuntime::SmartSsdRuntime(ssd::SsdDevice* device) : device_(device) {
  SMARTSSD_CHECK(device != nullptr);
}

void SmartSsdRuntime::AttachTracer(obs::Tracer* tracer,
                                   std::string_view process) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    track_ = tracer_->RegisterTrack(process, "session");
  }
}

std::unique_ptr<SessionTask> SmartSsdRuntime::StartSession(
    InSsdProgram& program, const PollingPolicy& policy, SimTime start,
    std::vector<std::byte>* host_output) {
  return std::unique_ptr<SessionTask>(
      new SessionTask(this, &program, policy, start, host_output));
}

Result<SessionStats> SmartSsdRuntime::RunSession(
    InSsdProgram& program, const PollingPolicy& policy, SimTime start,
    std::vector<std::byte>* host_output, SimTime* failed_at) {
  const std::uint64_t dram_free_before = device_->device_dram_free();
  std::unique_ptr<SessionTask> task =
      StartSession(program, policy, start, host_output);
  Status error = Status::OK();
  while (!task->finished()) {
    Result<SimTime> step = task->Step();
    if (!step.ok()) {
      error = step.status();
      break;
    }
  }
  if (task->failed() && failed_at != nullptr) {
    *failed_at = task->fail_time();
  }
  // Session-leak check: every grant the session took — DRAM for hash
  // tables and buffers, accounted by SessionServices — must be back,
  // whether the session succeeded or was torn down mid-stream. A leak
  // here would starve every later pushdown, so it is an engine bug worth
  // failing loudly (but recoverably) over.
  if (device_->device_dram_free() != dram_free_before) {
    return InternalError("smart session leaked device resource grants");
  }
  if (!error.ok()) return error;
  return task->stats();
}

void SmartSsdRuntime::NoteSessionBegin() {
  if (active_sessions_ == 0) {
    idle_dram_free_ = device_->device_dram_free();
  }
  ++active_sessions_;
  max_active_sessions_ = std::max(max_active_sessions_, active_sessions_);
}

void SmartSsdRuntime::NoteSessionFinished(bool failed, SimTime fail_time,
                                          const Status& status) {
  ++sessions_run_;
  if (failed) {
    ++sessions_failed_;
    if (tracer_ != nullptr) {
      tracer_->Instant(
          track_, "session failed", "protocol", fail_time,
          {obs::Arg::Str("code", StatusCodeToString(status.code())),
           obs::Arg::Str("error", status.message())});
    }
  }
}

void SmartSsdRuntime::NoteSessionRetired() {
  SMARTSSD_CHECK_GT(active_sessions_, 0);
  --active_sessions_;
  if (active_sessions_ == 0 &&
      device_->device_dram_free() != idle_dram_free_) {
    leak_detected_ = true;
  }
}

}  // namespace smartssd::smart
