#include "smart/runtime.h"

#include <algorithm>
#include <vector>

#include "smart/result_queue.h"

namespace smartssd::smart {

namespace {

// Adapter exposing the device to a program, with DRAM bookkeeping so the
// runtime can release everything the session allocated at CLOSE.
class SessionServices : public DeviceServices {
 public:
  explicit SessionServices(ssd::SsdDevice* device) : device_(device) {}

  ~SessionServices() override {
    if (allocated_ > 0) device_->ReleaseDeviceDram(allocated_);
  }

  std::uint32_t page_size() const override { return device_->page_size(); }

  Result<SimTime> ReadInternal(std::uint64_t lpn, SimTime ready) override {
    return device_->InternalReadPageTiming(lpn, ready);
  }

  std::span<const std::byte> ViewPage(std::uint64_t lpn) const override {
    return device_->ViewPage(lpn);
  }

  SimTime Execute(std::uint64_t cycles, SimTime ready) override {
    return device_->ExecuteOnDevice(cycles, ready);
  }

  Status AllocateDram(std::uint64_t bytes) override {
    SMARTSSD_RETURN_IF_ERROR(device_->AllocateDeviceDram(bytes));
    allocated_ += bytes;
    return Status::OK();
  }

 private:
  ssd::SsdDevice* device_;
  std::uint64_t allocated_ = 0;
};

// Collects the bytes a program emits during one callback; the runtime
// stamps them with the callback's completion time afterwards (output
// becomes visible when the work that produced it retires).
class BufferingSink : public ResultSink {
 public:
  void Emit(std::span<const std::byte> bytes) override {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  std::span<const std::byte> bytes() const { return buffer_; }
  void Clear() { buffer_.clear(); }

 private:
  std::vector<std::byte> buffer_;
};

}  // namespace

SmartSsdRuntime::SmartSsdRuntime(ssd::SsdDevice* device) : device_(device) {
  SMARTSSD_CHECK(device != nullptr);
}

void SmartSsdRuntime::AttachTracer(obs::Tracer* tracer,
                                   std::string_view process) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    track_ = tracer_->RegisterTrack(process, "session");
  }
}

Result<SessionStats> SmartSsdRuntime::RunSession(
    InSsdProgram& program, const PollingPolicy& policy, SimTime start,
    std::vector<std::byte>* host_output, SimTime* failed_at) {
  const std::uint64_t dram_free_before = device_->device_dram_free();
  SimTime fail_time = start;
  Result<SessionStats> result =
      RunSessionImpl(program, policy, start, host_output, &fail_time);
  ++sessions_run_;
  if (!result.ok()) {
    ++sessions_failed_;
    if (failed_at != nullptr) *failed_at = fail_time;
    if (tracer_ != nullptr) {
      tracer_->Instant(
          track_, "session failed", "protocol", fail_time,
          {obs::Arg::Str("code", StatusCodeToString(result.status().code())),
           obs::Arg::Str("error", result.status().message())});
    }
  }
  // Session-leak check: every grant the session took — DRAM for hash
  // tables and buffers, accounted by SessionServices — must be back,
  // whether the session succeeded or was torn down mid-stream. A leak
  // here would starve every later pushdown, so it is an engine bug worth
  // failing loudly (but recoverably) over.
  if (device_->device_dram_free() != dram_free_before) {
    return InternalError("smart session leaked device resource grants");
  }
  return result;
}

Result<SessionStats> SmartSsdRuntime::RunSessionImpl(
    InSsdProgram& program, const PollingPolicy& policy, SimTime start,
    std::vector<std::byte>* host_output, SimTime* fail_time) {
  SessionStats stats;
  stats.session_id = next_session_id_++;
  stats.open_issued = start;
  sim::FaultInjector& faults = device_->fault_injector();

  // --- OPEN: command round + resource grant + program build phase ---
  SimTime t = device_->HostCommand(start);
  *fail_time = t;
  if (faults.OnEvent(sim::FaultKind::kOpenRejected, t)) {
    return ResourceExhaustedError(
        "OPEN rejected by the device (injected fault)");
  }
  SessionServices services(device_);
  const std::uint64_t dram_needed = program.DramBytesRequired();
  if (dram_needed > 0) {
    SMARTSSD_RETURN_IF_ERROR(services.AllocateDram(dram_needed));
  }
  SMARTSSD_ASSIGN_OR_RETURN(SimTime open_done, program.Open(services, t));
  open_done = std::max(open_done, t);
  stats.open_done = open_done;
  *fail_time = open_done;
  if (tracer_ != nullptr) {
    tracer_->Complete(track_, "OPEN", "protocol", start, open_done,
                      {obs::Arg::Uint("session", stats.session_id),
                       obs::Arg::Uint("dram_bytes", dram_needed)});
  }

  // --- Device-side processing: stream the input extents ---
  ResultQueue queue(device_->page_size());
  BufferingSink sink;
  SimTime processing_done = open_done;
  for (const LpnRange& extent : program.InputExtents()) {
    for (std::uint64_t i = 0; i < extent.count; ++i) {
      const std::uint64_t lpn = extent.first_lpn + i;
      SMARTSSD_ASSIGN_OR_RETURN(
          const SimTime in_dram,
          device_->InternalReadPageTiming(lpn, open_done));
      sink.Clear();
      SMARTSSD_ASSIGN_OR_RETURN(
          const ProgramCharge charge,
          program.ProcessPage(device_->ViewPage(lpn), sink));
      const SimTime done = device_->ExecuteOnDevice(charge.cycles, in_dram);
      if (faults.OnEvent(sim::FaultKind::kDeviceReset, done)) {
        *fail_time = done + kDeviceResetRecovery;
        return AbortedError("device reset mid-session (injected fault)");
      }
      if (faults.OnEvent(sim::FaultKind::kResultQueueOverflow, done)) {
        *fail_time = done;
        return ResourceExhaustedError(
            "device result queue overflow (injected fault)");
      }
      queue.Append(sink.bytes(), done);
      stats.embedded_cycles += charge.cycles;
      ++stats.pages_processed;
      processing_done = std::max(processing_done, done);
      *fail_time = processing_done;
    }
  }
  sink.Clear();
  SMARTSSD_ASSIGN_OR_RETURN(const ProgramCharge final_charge,
                            program.Finish(sink));
  processing_done =
      device_->ExecuteOnDevice(final_charge.cycles, processing_done);
  stats.embedded_cycles += final_charge.cycles;
  queue.Append(sink.bytes(), processing_done);
  queue.Flush(processing_done);
  stats.processing_done = processing_done;
  *fail_time = processing_done;
  if (tracer_ != nullptr) {
    tracer_->Complete(
        track_, "process extents", "protocol", open_done, processing_done,
        {obs::Arg::Uint("pages", stats.pages_processed),
         obs::Arg::Uint("embedded_cycles", stats.embedded_cycles)});
  }

  // --- GET polling: the host drains results as they become ready,
  // backing off while the device reports nothing and re-issuing (within
  // the retry budget) GETs whose responses stall. ---
  SimTime poll_time = open_done;
  SimTime last_transfer = open_done;
  SimDuration interval = policy.min_poll_interval;
  std::uint32_t retries_left = policy.session_retry_budget;
  for (;;) {
    const SimTime get_issued = poll_time;
    poll_time = device_->HostCommand(poll_time);  // the GET itself
    ++stats.gets_issued;
    *fail_time = poll_time;
    if (faults.OnEvent(sim::FaultKind::kDeviceReset, poll_time)) {
      *fail_time = poll_time + kDeviceResetRecovery;
      return AbortedError("device reset mid-session (injected fault)");
    }
    if (faults.OnEvent(sim::FaultKind::kGetStall, poll_time)) {
      // The response never arrives: the host times out and re-issues,
      // burning one unit of the session retry budget.
      if (retries_left == 0) {
        *fail_time = poll_time + policy.get_timeout;
        return IoError("GET stalled; session retry budget exhausted");
      }
      --retries_left;
      ++stats.get_retries;
      if (tracer_ != nullptr) {
        tracer_->Instant(track_, "GET stall", "protocol", poll_time,
                         {obs::Arg::Uint("retries_left", retries_left)});
      }
      poll_time += policy.get_timeout;
      interval = policy.min_poll_interval;
      continue;
    }
    bool transferred = false;
    ResultChunk chunk;
    while (queue.PopReady(poll_time, &chunk)) {
      if (faults.OnBytes(sim::FaultKind::kTransferError, chunk.data.size(),
                         poll_time)) {
        *fail_time = poll_time;
        return IoError(
            "result transfer failed on the host interface (injected "
            "fault)");
      }
      poll_time = device_->TransferToHost(chunk.data.size(), poll_time);
      if (host_output != nullptr) {
        host_output->insert(host_output->end(), chunk.data.begin(),
                            chunk.data.end());
      }
      stats.result_bytes += chunk.data.size();
      last_transfer = poll_time;
      transferred = true;
    }
    if (tracer_ != nullptr) {
      tracer_->Complete(track_, "GET", "protocol", get_issued, poll_time,
                        {obs::Arg::Uint("delivered", transferred ? 1 : 0)});
    }
    if (queue.pending_chunks() == 0 && poll_time >= processing_done) {
      // This GET saw the program finished with nothing left to deliver.
      break;
    }
    if (transferred) {
      interval = policy.min_poll_interval;
    } else {
      if (tracer_ != nullptr) {
        tracer_->Instant(track_, "poll backoff", "protocol", poll_time,
                         {obs::Arg::Uint("interval_ns", interval)});
      }
      poll_time += interval;
      interval = policy.NextInterval(interval);
    }
  }
  stats.last_transfer_done = last_transfer;

  // --- CLOSE: tear down, free grants (via ~SessionServices) ---
  stats.close_done = device_->HostCommand(poll_time);
  if (tracer_ != nullptr) {
    tracer_->Complete(track_, "CLOSE", "protocol", poll_time,
                      stats.close_done,
                      {obs::Arg::Uint("session", stats.session_id)});
  }
  return stats;
}

}  // namespace smartssd::smart
