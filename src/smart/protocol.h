#ifndef SMARTSSD_SMART_PROTOCOL_H_
#define SMARTSSD_SMART_PROTOCOL_H_

#include <cstdint>

#include "common/units.h"

namespace smartssd::smart {

// The three-command session protocol of Section 3. The protocol rides the
// standard SATA/SAS transport: every command costs one host-interface
// command round, and all result data flows back through GET responses
// (the device is a passive entity — it never initiates a transfer).
enum class CommandType {
  kOpen,   // start session: grant threads + memory, return session id
  kGet,    // poll status, drain available result data
  kClose,  // tear down session, free resources
};

using SessionId = std::uint64_t;

enum class SessionState {
  kIdle,       // no session
  kRunning,    // program still processing
  kDrained,    // program finished, all results delivered
  kClosed,
};

// Host-side polling policy for GET. The host sleeps `poll_interval`
// between GETs while the device reports kRunning with no data ready.
struct PollingPolicy {
  SimDuration poll_interval = 500 * kMicrosecond;
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_PROTOCOL_H_
