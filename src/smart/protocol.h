#ifndef SMARTSSD_SMART_PROTOCOL_H_
#define SMARTSSD_SMART_PROTOCOL_H_

#include <cstdint>

#include "common/units.h"

namespace smartssd::smart {

// The three-command session protocol of Section 3. The protocol rides the
// standard SATA/SAS transport: every command costs one host-interface
// command round, and all result data flows back through GET responses
// (the device is a passive entity — it never initiates a transfer).
enum class CommandType {
  kOpen,   // start session: grant threads + memory, return session id
  kGet,    // poll status, drain available result data
  kClose,  // tear down session, free resources
};

using SessionId = std::uint64_t;

enum class SessionState {
  kIdle,       // no session
  kRunning,    // program still processing
  kDrained,    // program finished, all results delivered
  kClosed,
};

// Virtual time a device needs to come back after a (injected) controller
// reset before the host can reach it again.
inline constexpr SimDuration kDeviceResetRecovery = 10 * kMillisecond;

// Host-side polling policy for GET, with bounded exponential backoff and
// stall handling. While the device reports kRunning with no data ready,
// the host sleeps `min_poll_interval`, doubling (times
// `backoff_multiplier`) up to `max_poll_interval` on consecutive empty
// polls; any delivered data resets the interval. The shared default keeps
// min == max == 500 us — i.e. the original fixed-interval polling — so
// timing-sensitive experiments are unchanged unless a caller opts into
// backoff.
//
// A GET whose response does not arrive within `get_timeout` is treated as
// lost: the host re-issues it, spending one unit of the per-session retry
// budget. A session that exhausts `session_retry_budget` fails, and the
// engine falls back to the host scan path.
struct PollingPolicy {
  SimDuration min_poll_interval = 500 * kMicrosecond;
  SimDuration max_poll_interval = 500 * kMicrosecond;
  double backoff_multiplier = 2.0;
  SimDuration get_timeout = 50 * kMillisecond;
  std::uint32_t session_retry_budget = 3;

  // Next sleep after one more empty poll at `current`.
  SimDuration NextInterval(SimDuration current) const {
    if (current >= max_poll_interval) return max_poll_interval;
    const double next =
        static_cast<double>(current) *
        (backoff_multiplier > 1.0 ? backoff_multiplier : 1.0);
    const double max = static_cast<double>(max_poll_interval);
    return next >= max ? max_poll_interval
                       : static_cast<SimDuration>(next);
  }

  // A latency-lenient variant that backs off 500 us -> 8 ms, trading GET
  // round-trips (host-link command traffic) for result latency.
  static PollingPolicy WithBackoff() {
    PollingPolicy policy;
    policy.min_poll_interval = 500 * kMicrosecond;
    policy.max_poll_interval = 8 * kMillisecond;
    return policy;
  }
};

}  // namespace smartssd::smart

#endif  // SMARTSSD_SMART_PROTOCOL_H_
