// Writing a custom in-SSD program against the raw session API
// (Section 3's OPEN/GET/CLOSE), below the query engine: a per-page
// column-statistics collector that builds zone maps (per-page min/max of
// a column) entirely inside the device and ships only the statistics to
// the host — a classic computational-storage building block.
//
//   ./build/examples/smart_program

#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "engine/database.h"
#include "smart/program.h"
#include "smart/runtime.h"
#include "storage/pax_page.h"
#include "tpch/synthetic.h"

using namespace smartssd;

namespace {

// One zone-map entry per page, as shipped over the GET channel.
struct ZoneEntry {
  std::uint64_t lpn;
  std::int32_t min_value;
  std::int32_t max_value;
};

// The device-side program. It follows the InSsdProgram lifecycle:
// OPEN grants resources, the runtime streams the declared extent through
// the internal data path, ProcessPage runs on the embedded cores, and
// the emitted ZoneEntry records flow back through polled GETs.
class ZoneMapBuilder final : public smart::InSsdProgram {
 public:
  ZoneMapBuilder(const storage::TableInfo* table, int column)
      : table_(table), column_(column) {}

  std::string_view name() const override { return "zone_map_builder"; }

  Result<SimTime> Open(smart::DeviceServices& device,
                       SimTime ready) override {
    (void)device;
    return ready;
  }

  std::vector<smart::LpnRange> InputExtents() const override {
    return {{table_->first_lpn, table_->page_count}};
  }

  Result<smart::ProgramCharge> ProcessPage(
      std::span<const std::byte> page, smart::ResultSink& sink) override {
    auto reader = storage::PaxPageReader::Open(&table_->schema, page);
    SMARTSSD_RETURN_IF_ERROR(reader.status());
    ZoneEntry entry{table_->first_lpn + pages_seen_,
                    std::numeric_limits<std::int32_t>::max(),
                    std::numeric_limits<std::int32_t>::min()};
    for (std::uint16_t i = 0; i < reader->tuple_count(); ++i) {
      std::int32_t v;
      std::memcpy(&v, reader->value(i, column_), sizeof(v));
      entry.min_value = std::min(entry.min_value, v);
      entry.max_value = std::max(entry.max_value, v);
    }
    sink.Emit({reinterpret_cast<const std::byte*>(&entry), sizeof(entry)});
    ++pages_seen_;
    // Cost: one PAX minipage walk; ~8 cycles per value on the embedded
    // cores plus fixed page overhead.
    return smart::ProgramCharge{
        .cycles = 1500 + 8ull * reader->tuple_count()};
  }

  Result<smart::ProgramCharge> Finish(smart::ResultSink&) override {
    return smart::ProgramCharge{.cycles = 100};
  }

 private:
  const storage::TableInfo* table_;
  int column_;
  std::uint64_t pages_seen_ = 0;
};

}  // namespace

int main() {
  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  auto table = tpch::LoadSyntheticS(db, "S", /*num_columns=*/16,
                                    /*rows=*/100'000, /*r_rows=*/100,
                                    storage::PageLayout::kPax);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  db.ResetForColdRun();

  // Drive the session protocol directly.
  ZoneMapBuilder program(&*table, /*column=*/2);
  std::vector<std::byte> output;
  auto session = db.runtime()->RunSession(program, smart::PollingPolicy{},
                                          /*start=*/0, &output);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  const std::size_t entries = output.size() / sizeof(ZoneEntry);
  std::printf("Session %llu: built zone maps for %llu pages in %.4f s "
              "(virtual), %llu GETs, %.1f KB shipped to host "
              "(vs %.1f MB of raw pages).\n",
              static_cast<unsigned long long>(session->session_id),
              static_cast<unsigned long long>(session->pages_processed),
              ToSeconds(session->elapsed()),
              static_cast<unsigned long long>(session->gets_issued),
              static_cast<double>(output.size()) / 1e3,
              static_cast<double>(table->page_count) *
                  db.device().page_size() / 1e6);

  // Show a few entries and verify them against Col_3's domain.
  std::printf("\n%-10s %12s %12s\n", "lpn", "min(Col_3)", "max(Col_3)");
  for (std::size_t i = 0; i < entries; i += entries / 8 + 1) {
    ZoneEntry entry;
    std::memcpy(&entry, output.data() + i * sizeof(ZoneEntry),
                sizeof(entry));
    std::printf("%-10llu %12d %12d\n",
                static_cast<unsigned long long>(entry.lpn),
                entry.min_value, entry.max_value);
  }
  std::printf("\nA zone-aware scan could now skip every page whose "
              "[min,max] excludes its predicate range without reading "
              "it from flash.\n");
  return 0;
}
