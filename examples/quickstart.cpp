// Quickstart: load a table onto a simulated Smart SSD, run the same
// query on the host path and through in-SSD pushdown, and compare
// results, elapsed (virtual) time, and energy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "energy/energy_model.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"

using namespace smartssd;

int main() {
  // A database backed by the paper's Smart SSD configuration.
  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());

  // Load a 64-column synthetic table (200k rows, ~50 MB) in PAX layout.
  auto table = tpch::LoadSyntheticS(db, "Synthetic64_S", /*num_columns=*/64,
                                    /*rows=*/200'000, /*r_rows=*/1000,
                                    storage::PageLayout::kPax);
  if (!table.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %s: %llu rows, %llu pages (%s layout)\n",
              table->name.c_str(),
              static_cast<unsigned long long>(table->tuple_count),
              static_cast<unsigned long long>(table->page_count),
              storage::PageLayoutName(table->layout));

  // A selective scan + aggregate: SUM(Col_1) WHERE Col_3 < 1% threshold.
  exec::QuerySpec spec = tpch::ScanQuerySpec("Synthetic64_S", 64,
                                             /*selectivity=*/0.01,
                                             /*aggregate=*/true);

  // Ask the pushdown planner what it would do.
  engine::QueryExecutor executor(&db);
  auto bound = exec::Bind(spec, db.catalog());
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan: %s\n", exec::PlanToString(*bound).c_str());
  engine::PushdownPlanner planner(&db);
  auto decision =
      planner.Decide(*bound, engine::PlanHints{.predicate_selectivity = 0.01});
  if (decision.ok()) {
    std::printf("Planner: %s (%s); est host %.3fs vs smart %.3fs\n",
                engine::ExecutionTargetName(decision->target),
                decision->reason.c_str(), decision->est_host_seconds,
                decision->est_smart_seconds);
  }

  // Run both ways, cold, and compare.
  for (const auto target : {engine::ExecutionTarget::kHost,
                            engine::ExecutionTarget::kSmartSsd}) {
    db.ResetForColdRun();
    auto result = executor.Execute(spec, target);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const auto energy = energy::ComputeEnergy(
        result->stats, db.host().config(), db.device().power_profile());
    std::printf(
        "%-9s : SUM = %lld, elapsed %.4f s (virtual), "
        "host-link %.1f MB, energy %.3f kJ (I/O %.4f kJ)\n",
        engine::ExecutionTargetName(target),
        static_cast<long long>(result->agg_values[0]),
        result->stats.elapsed_seconds(),
        static_cast<double>(result->stats.bytes_over_host_link) / 1e6,
        energy.system_kilojoules, energy.io_kilojoules);
  }
  return 0;
}
