// The Section 4.3 appliance, end to end: a host coordinator staging
// query processing across an array of Smart SSDs, with the planner's
// coherence rules exercised by a live update.
//
//   ./build/examples/appliance [workers] [scale_factor]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "engine/parallel.h"
#include "engine/update.h"
#include "storage/nsm_page.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const double sf = argc > 2 ? std::atof(argv[2]) : 0.02;

  std::printf("Appliance: host coordinator + %d Smart SSD workers, "
              "LINEITEM SF %.3f partitioned across them.\n\n",
              workers, sf);
  engine::ParallelDatabase cluster(
      workers, engine::DatabaseOptions::PaperSmartSsd());

  // Materialize LINEITEM once, partition by row ranges.
  const storage::Schema schema = tpch::LineitemSchema();
  const std::uint64_t rows = tpch::LineitemRows(sf);
  auto buffer = std::make_shared<std::vector<std::byte>>(
      rows * schema.tuple_size());
  {
    engine::Database scratch(engine::DatabaseOptions::PaperSmartSsd());
    auto info = tpch::LoadLineitem(scratch, "lineitem", sf,
                                   storage::PageLayout::kNsm);
    Check(info.status(), "generate lineitem");
    std::vector<std::byte> page(scratch.device().page_size());
    std::uint64_t row = 0;
    for (std::uint64_t p = 0; p < info->page_count; ++p) {
      Check(scratch.device()
                .ReadPages(info->first_lpn + p, 1, page, 0)
                .status(),
            "read");
      auto reader = storage::NsmPageReader::Open(&schema, page);
      Check(reader.status(), "decode");
      for (std::uint16_t i = 0; i < reader->tuple_count(); ++i, ++row) {
        std::memcpy(buffer->data() + row * schema.tuple_size(),
                    reader->tuple(i), schema.tuple_size());
      }
    }
  }
  const std::uint32_t tuple_size = schema.tuple_size();
  storage::RowGenerator replay =
      [buffer, tuple_size](std::uint64_t row, storage::TupleWriter& w) {
        w.CopyFrom({buffer->data() + row * tuple_size, tuple_size});
      };
  Check(cluster.LoadPartitionedTable("lineitem", schema,
                                     storage::PageLayout::kPax, rows,
                                     replay),
        "partitioned load");
  cluster.ResetForColdRun();

  // 1. Q6 across the array.
  auto q6 = cluster.Execute(tpch::Q6Spec("lineitem"),
                            engine::ExecutionTarget::kSmartSsd);
  Check(q6.status(), "Q6");
  std::printf("Q6 across %d workers: revenue %.2f in %.4f s (virtual); "
              "slowest worker %.4f s\n",
              workers, tpch::Q6Revenue(q6->agg_values),
              q6->elapsed_seconds(),
              ToSeconds(q6->worker_stats[0].elapsed()));

  // 2. Q1 (grouped) across the array — merged key-wise by the host.
  cluster.ResetForColdRun();
  auto q1 = cluster.Execute(tpch::Q1Spec("lineitem"),
                            engine::ExecutionTarget::kSmartSsd);
  Check(q1.status(), "Q1");
  std::printf("Q1 across %d workers: %llu groups in %.4f s\n", workers,
              static_cast<unsigned long long>(q1->row_count()),
              q1->elapsed_seconds());
  const std::uint32_t width = q1->output_schema.tuple_size();
  for (std::uint64_t r = 0; r < q1->row_count(); ++r) {
    const std::byte* row = q1->rows.data() + r * width;
    std::int64_t count;
    std::memcpy(&count, row + width - 8, 8);
    std::printf("  group '%c%c': %lld rows\n",
                static_cast<char>(row[0]), static_cast<char>(row[1]),
                static_cast<long long>(count));
  }

  // 3. Coherence in action: update worker 0's partition, watch its
  //    pushdown get refused until the dirty pages are flushed.
  engine::Database& w0 = cluster.worker(0);
  engine::TableUpdater updater(&w0);
  const auto pred =
      expr::Le(expr::Col(tpch::kLOrderKey), expr::Lit(10));
  auto update = updater.Update(
      "lineitem", pred.get(),
      [](const expr::RowView&, storage::TupleWriter& writer) {
        writer.SetInt32(tpch::kLDiscount, 0);
      });
  Check(update.status(), "update");
  std::printf("\nUpdated %llu rows on worker 0 (pages now dirty in its "
              "buffer pool).\n",
              static_cast<unsigned long long>(update->rows_matched));

  engine::QueryExecutor w0_exec(&w0);
  auto refused = w0_exec.Execute(tpch::Q6Spec("lineitem"),
                                 engine::ExecutionTarget::kSmartSsd);
  std::printf("Pushdown on worker 0 while dirty: %s\n",
              refused.ok() ? "ACCEPTED (BUG)"
                           : refused.status().ToString().c_str());
  Check(w0.buffer_pool().FlushAll(0).status(), "flush");
  auto after = w0_exec.Execute(tpch::Q6Spec("lineitem"),
                               engine::ExecutionTarget::kSmartSsd);
  Check(after.status(), "post-flush Q6");
  std::printf("After FlushAll: pushdown accepted again (worker-0 revenue "
              "now %.2f).\n",
              tpch::Q6Revenue(after->agg_values));
  return 0;
}
