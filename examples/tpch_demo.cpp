// TPC-H demo: the paper's three query classes end to end — plans
// (the textual equivalents of Figures 4 and 6), planner decisions, and
// host-vs-pushdown timings on one Smart SSD database.
//
//   ./build/examples/tpch_demo [scale_factor]   (default 0.02)

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"
#include "engine/executor.h"
#include "engine/planner.h"
#include "tpch/queries.h"
#include "tpch/synthetic.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

void RunBothWays(engine::Database& db, const exec::QuerySpec& spec,
                 double selectivity_hint,
                 const std::function<void(const engine::QueryResult&)>&
                     print_answer) {
  auto bound = exec::Bind(spec, db.catalog());
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 bound.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n--- %s ---\n", spec.name.c_str());
  std::printf("plan: %s\n", exec::PlanToString(*bound).c_str());

  engine::PushdownPlanner planner(&db);
  auto decision = planner.Decide(
      *bound, engine::PlanHints{.predicate_selectivity = selectivity_hint});
  if (decision.ok()) {
    std::printf("planner: run on %s (%s)\n",
                engine::ExecutionTargetName(decision->target),
                decision->reason.c_str());
  }

  engine::QueryExecutor executor(&db);
  double host_seconds = 0;
  for (const auto target : {engine::ExecutionTarget::kHost,
                            engine::ExecutionTarget::kSmartSsd}) {
    db.ResetForColdRun();
    auto result = executor.Execute(spec, target);
    if (!result.ok()) {
      std::fprintf(stderr, "execute failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const double seconds = result->stats.elapsed_seconds();
    if (target == engine::ExecutionTarget::kHost) host_seconds = seconds;
    std::printf("%-9s: %8.4f s virtual, %6.1f MB over host link",
                engine::ExecutionTargetName(target), seconds,
                static_cast<double>(result->stats.bytes_over_host_link) /
                    1e6);
    if (target == engine::ExecutionTarget::kSmartSsd) {
      std::printf("  -> speedup %.2fx", host_seconds / seconds);
    }
    std::printf("\n");
    if (target == engine::ExecutionTarget::kHost) print_answer(*result);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::printf("Loading TPC-H at SF %.3f plus Synthetic64 tables "
              "(PAX layout on a Smart SSD)...\n",
              sf);

  engine::Database db(engine::DatabaseOptions::PaperSmartSsd());
  auto check = [](const auto& result, const char* what) {
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  check(tpch::LoadLineitem(db, "lineitem", sf, storage::PageLayout::kPax),
        "load lineitem");
  check(tpch::LoadPart(db, "part", sf, storage::PageLayout::kPax),
        "load part");
  const std::uint64_t s_rows = static_cast<std::uint64_t>(2e6 * sf);
  check(tpch::LoadSyntheticS(db, "S", 64, s_rows, s_rows / 400 + 1,
                             storage::PageLayout::kPax),
        "load S");
  check(tpch::LoadSyntheticR(db, "R", 64, s_rows / 400 + 1,
                             storage::PageLayout::kPax),
        "load R");

  RunBothWays(db, tpch::Q6Spec("lineitem"), 0.006,
              [](const engine::QueryResult& result) {
                std::printf("  Q6 revenue = %.2f\n",
                            tpch::Q6Revenue(result.agg_values));
              });

  RunBothWays(db, tpch::Q14Spec("lineitem", "part"), 0.4,
              [](const engine::QueryResult& result) {
                std::printf("  Q14 promo_revenue = %.4f%%\n",
                            tpch::Q14PromoRevenue(result.agg_values));
              });

  RunBothWays(db, tpch::JoinQuerySpec("S", "R", 0.01), 0.01,
              [](const engine::QueryResult& result) {
                std::printf("  join returned %llu rows\n",
                            static_cast<unsigned long long>(
                                result.row_count()));
              });
  return 0;
}
