// trace_q6: run TPC-H Q6 once on the regular SSD (host scan) and once
// on the Smart SSD (PAX pushdown), with the virtual-time tracer
// attached, and export a Chrome trace_event JSON of both runs. Load the
// file in Perfetto (https://ui.perfetto.dev) or chrome://tracing: each
// database appears as its own process group with lanes for the flash
// channels, device DRAM bus, embedded cores, host link, session
// protocol, and host executor.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_q6 [out.trace.json]
//
// Also dumps the always-on metrics registries (counters, gauges,
// histogram quantiles) for both databases to stdout.

#include <cstdio>

#include "engine/database.h"
#include "engine/executor.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

constexpr double kScaleFactor = 0.01;  // 60k LINEITEM rows

bool RunQ6(engine::Database& db, const char* table,
           engine::ExecutionTarget target, const char* label) {
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = executor.Execute(tpch::Q6Spec(table), target);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    return false;
  }
  std::printf(
      "%-16s : revenue %.2f, elapsed %.4f s (virtual)\n"
      "%-16s   stage busy: chip %.4f s, channel %.4f s, dram-bus %.4f s,"
      " host-link %.4f s, embedded %.4f s, host-cpu %.4f s\n",
      label, tpch::Q6Revenue(result->agg_values),
      result->stats.elapsed_seconds(), "",
      ToSeconds(result->stats.stage.flash_chip),
      ToSeconds(result->stats.stage.flash_channel),
      ToSeconds(result->stats.stage.dram_bus),
      ToSeconds(result->stats.stage.host_link),
      ToSeconds(result->stats.stage.embedded_cpu),
      ToSeconds(result->stats.stage.host_cpu));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "q6.trace.json";

  // One tracer shared by both databases; distinct process names keep
  // their lanes apart in the exported trace.
  obs::Tracer tracer;

  engine::Database ssd_db(engine::DatabaseOptions::PaperSsd());
  if (!tpch::LoadLineitem(ssd_db, "lineitem", kScaleFactor,
                          storage::PageLayout::kNsm)
           .ok()) {
    std::fprintf(stderr, "load lineitem (SSD) failed\n");
    return 1;
  }

  engine::Database smart_db(engine::DatabaseOptions::PaperSmartSsd());
  if (!tpch::LoadLineitem(smart_db, "lineitem_pax", kScaleFactor,
                          storage::PageLayout::kPax)
           .ok()) {
    std::fprintf(stderr, "load lineitem PAX (Smart SSD) failed\n");
    return 1;
  }

  // Attach after loading so bulk-load I/O stays out of the trace.
  ssd_db.AttachTracer(&tracer, "SAS SSD device", "SAS SSD host");
  smart_db.AttachTracer(&tracer, "Smart SSD device", "Smart SSD host");

  if (!RunQ6(ssd_db, "lineitem", engine::ExecutionTarget::kHost,
             "SAS SSD") ||
      !RunQ6(smart_db, "lineitem_pax", engine::ExecutionTarget::kSmartSsd,
             "Smart SSD (PAX)")) {
    return 1;
  }

  const Status written = obs::WriteChromeTrace(tracer, out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu trace events (%zu tracks) to %s\n",
              tracer.events().size(), tracer.tracks().size(), out_path);

  std::printf("\n--- SAS SSD metrics ---\n");
  ssd_db.metrics().PrintText(stdout);
  std::printf("\n--- Smart SSD metrics ---\n");
  smart_db.metrics().PrintText(stdout);
  return 0;
}
