// Energy report: runs the same analytic query against the paper's three
// storage configurations (SAS HDD, SAS SSD, Smart SSD) and prints a
// Table-3-style breakdown — elapsed virtual time, average system power,
// whole-system energy, I/O-subsystem energy, and energy over the 235 W
// idle base.
//
//   ./build/examples/energy_report [scale_factor]   (default 0.02)

#include <cstdio>
#include <cstdlib>

#include "energy/energy_model.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace smartssd;

namespace {

struct Row {
  const char* label;
  double seconds;
  energy::EnergyBreakdown energy;
};

Row Measure(engine::DeviceKind kind, const char* label, double sf,
            storage::PageLayout layout, engine::ExecutionTarget target) {
  engine::DatabaseOptions options;
  switch (kind) {
    case engine::DeviceKind::kHdd:
      options = engine::DatabaseOptions::PaperHdd();
      break;
    case engine::DeviceKind::kSsd:
      options = engine::DatabaseOptions::PaperSsd();
      break;
    case engine::DeviceKind::kSmartSsd:
      options = engine::DatabaseOptions::PaperSmartSsd();
      break;
  }
  engine::Database db(options);
  auto loaded = tpch::LoadLineitem(db, "lineitem", sf, layout);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    std::exit(1);
  }
  db.ResetForColdRun();
  engine::QueryExecutor executor(&db);
  auto result = executor.Execute(tpch::Q6Spec("lineitem"), target);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return Row{label, result->stats.elapsed_seconds(),
             energy::ComputeEnergy(result->stats, db.host().config(),
                                   db.device().power_profile())};
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::printf("TPC-H Q6 at SF %.3f, cold runs; energy per the paper's "
              "power envelope (235 W idle base).\n\n",
              sf);

  const Row rows[] = {
      Measure(engine::DeviceKind::kHdd, "SAS HDD (host)", sf,
              storage::PageLayout::kNsm, engine::ExecutionTarget::kHost),
      Measure(engine::DeviceKind::kSsd, "SAS SSD (host)", sf,
              storage::PageLayout::kNsm, engine::ExecutionTarget::kHost),
      Measure(engine::DeviceKind::kSmartSsd, "Smart SSD (NSM)", sf,
              storage::PageLayout::kNsm,
              engine::ExecutionTarget::kSmartSsd),
      Measure(engine::DeviceKind::kSmartSsd, "Smart SSD (PAX)", sf,
              storage::PageLayout::kPax,
              engine::ExecutionTarget::kSmartSsd),
  };

  std::printf("%-18s %12s %11s %12s %12s %12s\n", "configuration",
              "elapsed (s)", "avg W", "system (J)", "I/O (J)",
              "over-idle (J)");
  for (const Row& row : rows) {
    std::printf("%-18s %12.4f %11.1f %12.2f %12.3f %12.2f\n", row.label,
                row.seconds, row.energy.average_system_watts,
                row.energy.system_kilojoules * 1000,
                row.energy.io_kilojoules * 1000,
                row.energy.over_idle_kilojoules * 1000);
  }

  const Row& pax = rows[3];
  std::printf("\nRelative to Smart SSD (PAX):\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-18s %5.1fx system, %5.1fx I/O, %5.1fx over-idle\n",
                rows[i].label,
                rows[i].energy.system_kilojoules /
                    pax.energy.system_kilojoules,
                rows[i].energy.io_kilojoules / pax.energy.io_kilojoules,
                rows[i].energy.over_idle_kilojoules /
                    pax.energy.over_idle_kilojoules);
  }
  std::printf("\nPaper (Table 3): HDD 11.6x system / 14.3x I/O; "
              "SSD 1.9x system / 1.4x I/O.\n");
  return 0;
}
