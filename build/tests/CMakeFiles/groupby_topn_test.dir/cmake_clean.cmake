file(REMOVE_RECURSE
  "CMakeFiles/groupby_topn_test.dir/groupby_topn_test.cc.o"
  "CMakeFiles/groupby_topn_test.dir/groupby_topn_test.cc.o.d"
  "groupby_topn_test"
  "groupby_topn_test.pdb"
  "groupby_topn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_topn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
