# Empty dependencies file for groupby_topn_test.
# This may be replaced when dependencies are built.
