file(REMOVE_RECURSE
  "CMakeFiles/smart_runtime_test.dir/smart_runtime_test.cc.o"
  "CMakeFiles/smart_runtime_test.dir/smart_runtime_test.cc.o.d"
  "smart_runtime_test"
  "smart_runtime_test.pdb"
  "smart_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
