file(REMOVE_RECURSE
  "CMakeFiles/pushdown_program_test.dir/pushdown_program_test.cc.o"
  "CMakeFiles/pushdown_program_test.dir/pushdown_program_test.cc.o.d"
  "pushdown_program_test"
  "pushdown_program_test.pdb"
  "pushdown_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushdown_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
