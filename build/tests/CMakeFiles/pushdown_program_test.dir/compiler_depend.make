# Empty compiler generated dependencies file for pushdown_program_test.
# This may be replaced when dependencies are built.
