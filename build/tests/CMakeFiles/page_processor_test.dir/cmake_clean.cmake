file(REMOVE_RECURSE
  "CMakeFiles/page_processor_test.dir/page_processor_test.cc.o"
  "CMakeFiles/page_processor_test.dir/page_processor_test.cc.o.d"
  "page_processor_test"
  "page_processor_test.pdb"
  "page_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
