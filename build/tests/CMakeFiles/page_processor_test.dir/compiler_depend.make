# Empty compiler generated dependencies file for page_processor_test.
# This may be replaced when dependencies are built.
