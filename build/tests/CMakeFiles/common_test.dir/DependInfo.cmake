
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/smartssd_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/smartssd_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/smartssd_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/smartssd_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/smartssd_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/smartssd_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smartssd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/smartssd_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/smartssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/smartssd_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smartssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
