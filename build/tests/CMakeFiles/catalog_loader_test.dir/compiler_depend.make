# Empty compiler generated dependencies file for catalog_loader_test.
# This may be replaced when dependencies are built.
