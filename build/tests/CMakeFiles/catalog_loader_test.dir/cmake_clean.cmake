file(REMOVE_RECURSE
  "CMakeFiles/catalog_loader_test.dir/catalog_loader_test.cc.o"
  "CMakeFiles/catalog_loader_test.dir/catalog_loader_test.cc.o.d"
  "catalog_loader_test"
  "catalog_loader_test.pdb"
  "catalog_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
