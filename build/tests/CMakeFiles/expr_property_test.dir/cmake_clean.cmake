file(REMOVE_RECURSE
  "CMakeFiles/expr_property_test.dir/expr_property_test.cc.o"
  "CMakeFiles/expr_property_test.dir/expr_property_test.cc.o.d"
  "expr_property_test"
  "expr_property_test.pdb"
  "expr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
