# Empty compiler generated dependencies file for abl_dram_buses.
# This may be replaced when dependencies are built.
