file(REMOVE_RECURSE
  "CMakeFiles/abl_dram_buses.dir/abl_dram_buses.cc.o"
  "CMakeFiles/abl_dram_buses.dir/abl_dram_buses.cc.o.d"
  "abl_dram_buses"
  "abl_dram_buses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dram_buses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
