# Empty compiler generated dependencies file for table2_seq_read.
# This may be replaced when dependencies are built.
