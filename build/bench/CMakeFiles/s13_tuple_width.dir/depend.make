# Empty dependencies file for s13_tuple_width.
# This may be replaced when dependencies are built.
