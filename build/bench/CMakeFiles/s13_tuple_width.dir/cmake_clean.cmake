file(REMOVE_RECURSE
  "CMakeFiles/s13_tuple_width.dir/s13_tuple_width.cc.o"
  "CMakeFiles/s13_tuple_width.dir/s13_tuple_width.cc.o.d"
  "s13_tuple_width"
  "s13_tuple_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s13_tuple_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
