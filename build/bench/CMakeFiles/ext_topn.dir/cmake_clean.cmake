file(REMOVE_RECURSE
  "CMakeFiles/ext_topn.dir/ext_topn.cc.o"
  "CMakeFiles/ext_topn.dir/ext_topn.cc.o.d"
  "ext_topn"
  "ext_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
