# Empty compiler generated dependencies file for ext_topn.
# This may be replaced when dependencies are built.
