file(REMOVE_RECURSE
  "CMakeFiles/abl_host_interface.dir/abl_host_interface.cc.o"
  "CMakeFiles/abl_host_interface.dir/abl_host_interface.cc.o.d"
  "abl_host_interface"
  "abl_host_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_host_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
