# Empty compiler generated dependencies file for abl_host_interface.
# This may be replaced when dependencies are built.
