# Empty dependencies file for abl_zonemap.
# This may be replaced when dependencies are built.
