file(REMOVE_RECURSE
  "CMakeFiles/abl_zonemap.dir/abl_zonemap.cc.o"
  "CMakeFiles/abl_zonemap.dir/abl_zonemap.cc.o.d"
  "abl_zonemap"
  "abl_zonemap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_zonemap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
