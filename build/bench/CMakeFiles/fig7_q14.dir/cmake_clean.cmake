file(REMOVE_RECURSE
  "CMakeFiles/fig7_q14.dir/fig7_q14.cc.o"
  "CMakeFiles/fig7_q14.dir/fig7_q14.cc.o.d"
  "fig7_q14"
  "fig7_q14.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_q14.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
