# Empty dependencies file for fig7_q14.
# This may be replaced when dependencies are built.
