# Empty compiler generated dependencies file for fig3_q6.
# This may be replaced when dependencies are built.
