file(REMOVE_RECURSE
  "CMakeFiles/fig3_q6.dir/fig3_q6.cc.o"
  "CMakeFiles/fig3_q6.dir/fig3_q6.cc.o.d"
  "fig3_q6"
  "fig3_q6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_q6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
