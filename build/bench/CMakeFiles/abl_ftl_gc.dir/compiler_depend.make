# Empty compiler generated dependencies file for abl_ftl_gc.
# This may be replaced when dependencies are built.
