file(REMOVE_RECURSE
  "CMakeFiles/abl_ftl_gc.dir/abl_ftl_gc.cc.o"
  "CMakeFiles/abl_ftl_gc.dir/abl_ftl_gc.cc.o.d"
  "abl_ftl_gc"
  "abl_ftl_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ftl_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
