# Empty compiler generated dependencies file for table3_energy.
# This may be replaced when dependencies are built.
