file(REMOVE_RECURSE
  "CMakeFiles/s13_aggregation.dir/s13_aggregation.cc.o"
  "CMakeFiles/s13_aggregation.dir/s13_aggregation.cc.o.d"
  "s13_aggregation"
  "s13_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s13_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
