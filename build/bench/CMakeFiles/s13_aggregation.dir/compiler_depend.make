# Empty compiler generated dependencies file for s13_aggregation.
# This may be replaced when dependencies are built.
