# Empty compiler generated dependencies file for abl_page_size.
# This may be replaced when dependencies are built.
