# Empty dependencies file for ext_q1_groupby.
# This may be replaced when dependencies are built.
