file(REMOVE_RECURSE
  "CMakeFiles/ext_q1_groupby.dir/ext_q1_groupby.cc.o"
  "CMakeFiles/ext_q1_groupby.dir/ext_q1_groupby.cc.o.d"
  "ext_q1_groupby"
  "ext_q1_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_q1_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
