file(REMOVE_RECURSE
  "CMakeFiles/fig1_bandwidth_trends.dir/fig1_bandwidth_trends.cc.o"
  "CMakeFiles/fig1_bandwidth_trends.dir/fig1_bandwidth_trends.cc.o.d"
  "fig1_bandwidth_trends"
  "fig1_bandwidth_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bandwidth_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
