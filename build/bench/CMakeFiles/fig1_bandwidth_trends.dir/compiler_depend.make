# Empty compiler generated dependencies file for fig1_bandwidth_trends.
# This may be replaced when dependencies are built.
