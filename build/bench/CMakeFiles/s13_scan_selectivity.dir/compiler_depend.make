# Empty compiler generated dependencies file for s13_scan_selectivity.
# This may be replaced when dependencies are built.
