file(REMOVE_RECURSE
  "CMakeFiles/s13_scan_selectivity.dir/s13_scan_selectivity.cc.o"
  "CMakeFiles/s13_scan_selectivity.dir/s13_scan_selectivity.cc.o.d"
  "s13_scan_selectivity"
  "s13_scan_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s13_scan_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
