file(REMOVE_RECURSE
  "CMakeFiles/abl_embedded_cpu.dir/abl_embedded_cpu.cc.o"
  "CMakeFiles/abl_embedded_cpu.dir/abl_embedded_cpu.cc.o.d"
  "abl_embedded_cpu"
  "abl_embedded_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_embedded_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
