# Empty dependencies file for abl_embedded_cpu.
# This may be replaced when dependencies are built.
