
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/hdd_device.cc" "src/ssd/CMakeFiles/smartssd_ssd.dir/hdd_device.cc.o" "gcc" "src/ssd/CMakeFiles/smartssd_ssd.dir/hdd_device.cc.o.d"
  "/root/repo/src/ssd/interface_trends.cc" "src/ssd/CMakeFiles/smartssd_ssd.dir/interface_trends.cc.o" "gcc" "src/ssd/CMakeFiles/smartssd_ssd.dir/interface_trends.cc.o.d"
  "/root/repo/src/ssd/ssd_config.cc" "src/ssd/CMakeFiles/smartssd_ssd.dir/ssd_config.cc.o" "gcc" "src/ssd/CMakeFiles/smartssd_ssd.dir/ssd_config.cc.o.d"
  "/root/repo/src/ssd/ssd_device.cc" "src/ssd/CMakeFiles/smartssd_ssd.dir/ssd_device.cc.o" "gcc" "src/ssd/CMakeFiles/smartssd_ssd.dir/ssd_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftl/CMakeFiles/smartssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/smartssd_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smartssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
