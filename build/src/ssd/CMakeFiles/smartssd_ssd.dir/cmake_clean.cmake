file(REMOVE_RECURSE
  "CMakeFiles/smartssd_ssd.dir/hdd_device.cc.o"
  "CMakeFiles/smartssd_ssd.dir/hdd_device.cc.o.d"
  "CMakeFiles/smartssd_ssd.dir/interface_trends.cc.o"
  "CMakeFiles/smartssd_ssd.dir/interface_trends.cc.o.d"
  "CMakeFiles/smartssd_ssd.dir/ssd_config.cc.o"
  "CMakeFiles/smartssd_ssd.dir/ssd_config.cc.o.d"
  "CMakeFiles/smartssd_ssd.dir/ssd_device.cc.o"
  "CMakeFiles/smartssd_ssd.dir/ssd_device.cc.o.d"
  "libsmartssd_ssd.a"
  "libsmartssd_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
