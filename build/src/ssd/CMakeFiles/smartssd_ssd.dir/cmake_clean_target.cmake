file(REMOVE_RECURSE
  "libsmartssd_ssd.a"
)
