# Empty compiler generated dependencies file for smartssd_ssd.
# This may be replaced when dependencies are built.
