file(REMOVE_RECURSE
  "CMakeFiles/smartssd_exec.dir/cost_model.cc.o"
  "CMakeFiles/smartssd_exec.dir/cost_model.cc.o.d"
  "CMakeFiles/smartssd_exec.dir/hash_table.cc.o"
  "CMakeFiles/smartssd_exec.dir/hash_table.cc.o.d"
  "CMakeFiles/smartssd_exec.dir/page_processor.cc.o"
  "CMakeFiles/smartssd_exec.dir/page_processor.cc.o.d"
  "CMakeFiles/smartssd_exec.dir/predicate_range.cc.o"
  "CMakeFiles/smartssd_exec.dir/predicate_range.cc.o.d"
  "CMakeFiles/smartssd_exec.dir/pushdown_program.cc.o"
  "CMakeFiles/smartssd_exec.dir/pushdown_program.cc.o.d"
  "CMakeFiles/smartssd_exec.dir/query_spec.cc.o"
  "CMakeFiles/smartssd_exec.dir/query_spec.cc.o.d"
  "libsmartssd_exec.a"
  "libsmartssd_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
