
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cost_model.cc" "src/exec/CMakeFiles/smartssd_exec.dir/cost_model.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/cost_model.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/exec/CMakeFiles/smartssd_exec.dir/hash_table.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/hash_table.cc.o.d"
  "/root/repo/src/exec/page_processor.cc" "src/exec/CMakeFiles/smartssd_exec.dir/page_processor.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/page_processor.cc.o.d"
  "/root/repo/src/exec/predicate_range.cc" "src/exec/CMakeFiles/smartssd_exec.dir/predicate_range.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/predicate_range.cc.o.d"
  "/root/repo/src/exec/pushdown_program.cc" "src/exec/CMakeFiles/smartssd_exec.dir/pushdown_program.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/pushdown_program.cc.o.d"
  "/root/repo/src/exec/query_spec.cc" "src/exec/CMakeFiles/smartssd_exec.dir/query_spec.cc.o" "gcc" "src/exec/CMakeFiles/smartssd_exec.dir/query_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/smartssd_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smartssd_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/smart/CMakeFiles/smartssd_smart.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/smartssd_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/smartssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/smartssd_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smartssd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
