# Empty compiler generated dependencies file for smartssd_exec.
# This may be replaced when dependencies are built.
