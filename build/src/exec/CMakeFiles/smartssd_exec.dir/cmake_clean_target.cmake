file(REMOVE_RECURSE
  "libsmartssd_exec.a"
)
