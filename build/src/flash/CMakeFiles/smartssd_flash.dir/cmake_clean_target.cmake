file(REMOVE_RECURSE
  "libsmartssd_flash.a"
)
