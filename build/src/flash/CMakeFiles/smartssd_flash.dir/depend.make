# Empty dependencies file for smartssd_flash.
# This may be replaced when dependencies are built.
