file(REMOVE_RECURSE
  "CMakeFiles/smartssd_flash.dir/flash_array.cc.o"
  "CMakeFiles/smartssd_flash.dir/flash_array.cc.o.d"
  "libsmartssd_flash.a"
  "libsmartssd_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
