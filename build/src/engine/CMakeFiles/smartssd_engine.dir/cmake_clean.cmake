file(REMOVE_RECURSE
  "CMakeFiles/smartssd_engine.dir/buffer_pool.cc.o"
  "CMakeFiles/smartssd_engine.dir/buffer_pool.cc.o.d"
  "CMakeFiles/smartssd_engine.dir/database.cc.o"
  "CMakeFiles/smartssd_engine.dir/database.cc.o.d"
  "CMakeFiles/smartssd_engine.dir/executor.cc.o"
  "CMakeFiles/smartssd_engine.dir/executor.cc.o.d"
  "CMakeFiles/smartssd_engine.dir/parallel.cc.o"
  "CMakeFiles/smartssd_engine.dir/parallel.cc.o.d"
  "CMakeFiles/smartssd_engine.dir/planner.cc.o"
  "CMakeFiles/smartssd_engine.dir/planner.cc.o.d"
  "CMakeFiles/smartssd_engine.dir/update.cc.o"
  "CMakeFiles/smartssd_engine.dir/update.cc.o.d"
  "libsmartssd_engine.a"
  "libsmartssd_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
