file(REMOVE_RECURSE
  "libsmartssd_engine.a"
)
