# Empty dependencies file for smartssd_engine.
# This may be replaced when dependencies are built.
