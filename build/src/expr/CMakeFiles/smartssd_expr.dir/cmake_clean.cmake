file(REMOVE_RECURSE
  "CMakeFiles/smartssd_expr.dir/expression.cc.o"
  "CMakeFiles/smartssd_expr.dir/expression.cc.o.d"
  "libsmartssd_expr.a"
  "libsmartssd_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
