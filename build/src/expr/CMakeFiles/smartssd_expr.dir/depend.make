# Empty dependencies file for smartssd_expr.
# This may be replaced when dependencies are built.
