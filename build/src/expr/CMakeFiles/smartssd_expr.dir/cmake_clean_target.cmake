file(REMOVE_RECURSE
  "libsmartssd_expr.a"
)
