file(REMOVE_RECURSE
  "libsmartssd_smart.a"
)
