# Empty compiler generated dependencies file for smartssd_smart.
# This may be replaced when dependencies are built.
