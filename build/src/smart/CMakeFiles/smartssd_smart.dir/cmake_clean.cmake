file(REMOVE_RECURSE
  "CMakeFiles/smartssd_smart.dir/runtime.cc.o"
  "CMakeFiles/smartssd_smart.dir/runtime.cc.o.d"
  "libsmartssd_smart.a"
  "libsmartssd_smart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_smart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
