# Empty compiler generated dependencies file for smartssd_tpch.
# This may be replaced when dependencies are built.
