file(REMOVE_RECURSE
  "CMakeFiles/smartssd_tpch.dir/queries.cc.o"
  "CMakeFiles/smartssd_tpch.dir/queries.cc.o.d"
  "CMakeFiles/smartssd_tpch.dir/synthetic.cc.o"
  "CMakeFiles/smartssd_tpch.dir/synthetic.cc.o.d"
  "CMakeFiles/smartssd_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/smartssd_tpch.dir/tpch_gen.cc.o.d"
  "libsmartssd_tpch.a"
  "libsmartssd_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
