file(REMOVE_RECURSE
  "libsmartssd_tpch.a"
)
