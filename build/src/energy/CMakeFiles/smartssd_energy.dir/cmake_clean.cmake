file(REMOVE_RECURSE
  "CMakeFiles/smartssd_energy.dir/energy_model.cc.o"
  "CMakeFiles/smartssd_energy.dir/energy_model.cc.o.d"
  "libsmartssd_energy.a"
  "libsmartssd_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
