file(REMOVE_RECURSE
  "libsmartssd_energy.a"
)
