# Empty dependencies file for smartssd_energy.
# This may be replaced when dependencies are built.
