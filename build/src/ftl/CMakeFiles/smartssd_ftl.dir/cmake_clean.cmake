file(REMOVE_RECURSE
  "CMakeFiles/smartssd_ftl.dir/ftl.cc.o"
  "CMakeFiles/smartssd_ftl.dir/ftl.cc.o.d"
  "libsmartssd_ftl.a"
  "libsmartssd_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
