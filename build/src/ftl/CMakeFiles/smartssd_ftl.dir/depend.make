# Empty dependencies file for smartssd_ftl.
# This may be replaced when dependencies are built.
