file(REMOVE_RECURSE
  "libsmartssd_ftl.a"
)
