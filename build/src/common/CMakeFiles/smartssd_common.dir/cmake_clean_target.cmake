file(REMOVE_RECURSE
  "libsmartssd_common.a"
)
