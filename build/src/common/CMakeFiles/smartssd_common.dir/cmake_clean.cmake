file(REMOVE_RECURSE
  "CMakeFiles/smartssd_common.dir/logging.cc.o"
  "CMakeFiles/smartssd_common.dir/logging.cc.o.d"
  "CMakeFiles/smartssd_common.dir/random.cc.o"
  "CMakeFiles/smartssd_common.dir/random.cc.o.d"
  "CMakeFiles/smartssd_common.dir/status.cc.o"
  "CMakeFiles/smartssd_common.dir/status.cc.o.d"
  "libsmartssd_common.a"
  "libsmartssd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
