# Empty dependencies file for smartssd_common.
# This may be replaced when dependencies are built.
