# Empty dependencies file for smartssd_storage.
# This may be replaced when dependencies are built.
