file(REMOVE_RECURSE
  "CMakeFiles/smartssd_storage.dir/catalog.cc.o"
  "CMakeFiles/smartssd_storage.dir/catalog.cc.o.d"
  "CMakeFiles/smartssd_storage.dir/nsm_page.cc.o"
  "CMakeFiles/smartssd_storage.dir/nsm_page.cc.o.d"
  "CMakeFiles/smartssd_storage.dir/pax_page.cc.o"
  "CMakeFiles/smartssd_storage.dir/pax_page.cc.o.d"
  "CMakeFiles/smartssd_storage.dir/schema.cc.o"
  "CMakeFiles/smartssd_storage.dir/schema.cc.o.d"
  "CMakeFiles/smartssd_storage.dir/table_loader.cc.o"
  "CMakeFiles/smartssd_storage.dir/table_loader.cc.o.d"
  "CMakeFiles/smartssd_storage.dir/zone_map.cc.o"
  "CMakeFiles/smartssd_storage.dir/zone_map.cc.o.d"
  "libsmartssd_storage.a"
  "libsmartssd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartssd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
