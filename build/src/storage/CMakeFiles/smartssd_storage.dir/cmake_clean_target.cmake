file(REMOVE_RECURSE
  "libsmartssd_storage.a"
)
