
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/smartssd_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/nsm_page.cc" "src/storage/CMakeFiles/smartssd_storage.dir/nsm_page.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/nsm_page.cc.o.d"
  "/root/repo/src/storage/pax_page.cc" "src/storage/CMakeFiles/smartssd_storage.dir/pax_page.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/pax_page.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/smartssd_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/table_loader.cc" "src/storage/CMakeFiles/smartssd_storage.dir/table_loader.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/table_loader.cc.o.d"
  "/root/repo/src/storage/zone_map.cc" "src/storage/CMakeFiles/smartssd_storage.dir/zone_map.cc.o" "gcc" "src/storage/CMakeFiles/smartssd_storage.dir/zone_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smartssd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/smartssd_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/smartssd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/smartssd_flash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
