# Empty dependencies file for appliance.
# This may be replaced when dependencies are built.
