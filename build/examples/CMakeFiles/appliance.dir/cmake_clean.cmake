file(REMOVE_RECURSE
  "CMakeFiles/appliance.dir/appliance.cpp.o"
  "CMakeFiles/appliance.dir/appliance.cpp.o.d"
  "appliance"
  "appliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
