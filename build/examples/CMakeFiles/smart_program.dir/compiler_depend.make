# Empty compiler generated dependencies file for smart_program.
# This may be replaced when dependencies are built.
