file(REMOVE_RECURSE
  "CMakeFiles/smart_program.dir/smart_program.cpp.o"
  "CMakeFiles/smart_program.dir/smart_program.cpp.o.d"
  "smart_program"
  "smart_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
